"""Tests for the 3D reward mechanism."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.environment import MKGEnvironment, Query
from repro.rl.rewards import (
    CompositeReward,
    DestinationReward,
    DistanceReward,
    DiversityReward,
    RewardConfig,
    ZeroOneReward,
    build_reward,
)


class FixedScorer:
    """Triple scorer returning a constant probability (test double for ConvE)."""

    def __init__(self, value: float):
        self.value = value

    def probability(self, head: int, relation: int, tail: int) -> float:
        return self.value


@pytest.fixture()
def environment(tiny_graph) -> MKGEnvironment:
    return MKGEnvironment(tiny_graph, max_steps=4)


def make_state(environment, tiny_graph, path_names, answer="berlin"):
    query = Query(
        source=tiny_graph.entity_id("alice"),
        relation=tiny_graph.relation_id("lives_in"),
        answer=tiny_graph.entity_id(answer),
    )
    state = environment.reset(query)
    for relation_name, entity_name in path_names:
        action = (tiny_graph.relation_id(relation_name), tiny_graph.entity_id(entity_name))
        environment.step(state, action)
    return state


class TestRewardConfig:
    def test_default_weights_sum_to_one(self):
        RewardConfig()  # must not raise

    def test_invalid_weights_raise(self):
        with pytest.raises(ValueError):
            RewardConfig(lambda_destination=0.5, lambda_distance=0.2, lambda_diversity=0.2)
        with pytest.raises(ValueError):
            RewardConfig(lambda_destination=-0.1, lambda_distance=1.0, lambda_diversity=0.1)

    def test_named_ablation_configs(self):
        assert not RewardConfig.destination_only().use_distance
        assert not RewardConfig.destination_distance().use_diversity
        assert not RewardConfig.destination_diversity().use_distance

    def test_invalid_threshold_and_bandwidth(self):
        with pytest.raises(ValueError):
            RewardConfig(distance_threshold=0)
        with pytest.raises(ValueError):
            RewardConfig(bandwidth=0.0)


class TestDestinationReward:
    def test_correct_answer_gets_one(self, environment, tiny_graph):
        state = make_state(
            environment, tiny_graph, [("works_for", "acme"), ("located_in", "berlin")]
        )
        reward = DestinationReward(scorer=FixedScorer(0.3))
        assert reward(state, environment) == pytest.approx(1.0)

    def test_wrong_answer_uses_shaping(self, environment, tiny_graph):
        state = make_state(environment, tiny_graph, [("works_for", "acme")])
        reward = DestinationReward(scorer=FixedScorer(0.3))
        assert reward(state, environment) == pytest.approx(0.3)

    def test_wrong_answer_without_shaping_is_zero(self, environment, tiny_graph):
        state = make_state(environment, tiny_graph, [("works_for", "acme")])
        assert DestinationReward(scorer=None)(state, environment) == 0.0
        assert DestinationReward(scorer=FixedScorer(0.9), use_shaping=False)(
            state, environment
        ) == 0.0


class TestDistanceReward:
    def test_correct_short_path_rewarded(self, environment, tiny_graph):
        state = make_state(
            environment, tiny_graph, [("works_for", "acme"), ("located_in", "berlin")]
        )
        assert DistanceReward(threshold=3)(state, environment) == pytest.approx(0.5)

    def test_incorrect_short_path_gets_zero(self, environment, tiny_graph):
        state = make_state(environment, tiny_graph, [("works_for", "acme")])
        assert DistanceReward(threshold=3)(state, environment) == 0.0

    def test_long_path_penalised(self, environment, tiny_graph):
        state = make_state(
            environment,
            tiny_graph,
            [
                ("friend_of", "bob"),
                ("works_for", "acme"),
                ("located_in", "berlin"),
                ("in_country", "germany"),
            ],
            answer="germany",
        )
        assert DistanceReward(threshold=3)(state, environment) == pytest.approx(-1.0 / 16)

    def test_empty_path_gets_zero(self, environment, tiny_graph):
        state = make_state(environment, tiny_graph, [])
        assert DistanceReward(threshold=3)(state, environment) == 0.0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DistanceReward(threshold=0)

    def test_shorter_correct_paths_earn_more(self, environment, tiny_graph):
        two_hop = make_state(
            environment, tiny_graph, [("works_for", "acme"), ("located_in", "berlin")]
        )
        three_hop = make_state(
            environment,
            tiny_graph,
            [("friend_of", "bob"), ("works_for", "acme"), ("located_in", "berlin")],
        )
        reward = DistanceReward(threshold=3)
        assert reward(two_hop, environment) > reward(three_hop, environment)


class TestDiversityReward:
    def test_first_path_is_free(self, environment, tiny_graph, rng):
        reward = DiversityReward(rng.normal(size=(tiny_graph.num_relations, 6)), bandwidth=3.0)
        state = make_state(
            environment, tiny_graph, [("works_for", "acme"), ("located_in", "berlin")]
        )
        assert reward(state, environment) == 0.0
        assert reward.known_paths(state.query.relation) == 1

    def test_repeating_a_successful_path_is_penalised(self, environment, tiny_graph, rng):
        reward = DiversityReward(rng.normal(size=(tiny_graph.num_relations, 6)), bandwidth=3.0)
        path = [("works_for", "acme"), ("located_in", "berlin")]
        first_state = make_state(environment, tiny_graph, path)
        reward(first_state, environment)
        second_state = make_state(environment, tiny_graph, path)
        assert reward(second_state, environment) < 0.0

    def test_failed_paths_are_not_remembered(self, environment, tiny_graph, rng):
        reward = DiversityReward(rng.normal(size=(tiny_graph.num_relations, 6)), bandwidth=3.0)
        state = make_state(environment, tiny_graph, [("works_for", "acme")])
        reward(state, environment)
        assert reward.known_paths(state.query.relation) == 0

    def test_reset_memory(self, environment, tiny_graph, rng):
        reward = DiversityReward(rng.normal(size=(tiny_graph.num_relations, 6)))
        state = make_state(
            environment, tiny_graph, [("works_for", "acme"), ("located_in", "berlin")]
        )
        reward(state, environment)
        reward.reset_memory()
        assert reward.known_paths(state.query.relation) == 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            DiversityReward(rng.normal(size=(4,)))
        with pytest.raises(ValueError):
            DiversityReward(rng.normal(size=(4, 3)), bandwidth=0.0)


class TestCompositeAndZeroOne:
    def test_zero_one_reward(self, environment, tiny_graph):
        reward = ZeroOneReward()
        success = make_state(
            environment, tiny_graph, [("works_for", "acme"), ("located_in", "berlin")]
        )
        failure = make_state(environment, tiny_graph, [("works_for", "acme")])
        assert reward(success, environment) == 1.0
        assert reward(failure, environment) == 0.0
        reward.reset()  # must be a no-op, not an error

    def test_build_reward_requires_relation_embeddings_for_diversity(self):
        with pytest.raises(ValueError):
            build_reward(RewardConfig(), scorer=FixedScorer(0.5), relation_embeddings=None)

    def test_composite_combines_components(self, environment, tiny_graph, rng):
        reward = build_reward(
            RewardConfig(),
            scorer=FixedScorer(0.5),
            relation_embeddings=rng.normal(size=(tiny_graph.num_relations, 6)),
        )
        success = make_state(
            environment, tiny_graph, [("works_for", "acme"), ("located_in", "berlin")]
        )
        value = reward(success, environment)
        # λ1 * 1.0 + λ2 * 0.5 + λ3 * 0.0 with the default weights (0.1, 0.8, 0.1).
        assert value == pytest.approx(0.1 * 1.0 + 0.8 * 0.5)

    def test_composite_reset_clears_diversity_memory(self, environment, tiny_graph, rng):
        reward = build_reward(
            RewardConfig(),
            scorer=FixedScorer(0.5),
            relation_embeddings=rng.normal(size=(tiny_graph.num_relations, 6)),
        )
        state = make_state(
            environment, tiny_graph, [("works_for", "acme"), ("located_in", "berlin")]
        )
        reward(state, environment)
        reward.reset()
        assert reward.diversity.known_paths(state.query.relation) == 0

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_composite_reward_is_bounded(self, shaping_value):
        config = RewardConfig()
        destination = DestinationReward(scorer=FixedScorer(shaping_value))
        distance = DistanceReward()
        composite = CompositeReward(config, destination, distance, None)
        # Bounds follow from each component being in [-1, 1].
        assert -1.0 <= config.lambda_destination + config.lambda_distance <= 1.0
