"""Property-based tests for the 3D reward components.

The example-based reward tests live in ``test_rewards.py``; these check
range/combination invariants over randomly generated episode outcomes, which
is where subtle sign or normalisation bugs in reward code tend to hide.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.environment import EpisodeState, MKGEnvironment, Query
from repro.rl.rewards import (
    CompositeReward,
    DestinationReward,
    DistanceReward,
    DiversityReward,
    RewardConfig,
    ZeroOneReward,
    build_reward,
)


@pytest.fixture(scope="module")
def environment(request):
    graph = request.getfixturevalue("tiny_graph")
    return MKGEnvironment(graph, max_steps=4)


def _episode(environment, hops, reached_answer):
    """A synthetic terminal state with ``hops`` real hops."""
    graph = environment.graph
    alice = graph.entity_id("alice")
    berlin = graph.entity_id("berlin")
    paris = graph.entity_id("paris")
    lives_in = graph.relation_id("lives_in")
    works_for = graph.relation_id("works_for")
    query = Query(alice, lives_in, berlin)
    state = environment.reset(query)
    target = berlin if reached_answer else paris
    for step in range(hops):
        entity = target if step == hops - 1 else graph.entity_id("acme")
        environment.step(state, (works_for, entity))
    return state


class TestComponentRanges:
    @given(hops=st.integers(min_value=0, max_value=4), reached=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_destination_reward_in_unit_interval(self, environment, hops, reached):
        state = _episode(environment, hops, reached)
        reward = DestinationReward(scorer=None)(state, environment)
        assert 0.0 <= reward <= 1.0
        if reached and hops > 0:
            assert reward == 1.0

    @given(
        hops=st.integers(min_value=0, max_value=4),
        reached=st.booleans(),
        threshold=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_distance_reward_bounds(self, environment, hops, reached, threshold):
        state = _episode(environment, hops, reached)
        reward = DistanceReward(threshold=threshold)(state, environment)
        assert -1.0 <= reward <= 1.0
        if hops > threshold:
            assert reward == pytest.approx(-1.0 / (hops * hops))
        elif hops == 0 or not reached:
            assert reward == 0.0
        else:
            assert reward == pytest.approx(1.0 / hops)

    @given(hops=st.integers(min_value=1, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_diversity_reward_never_positive(self, environment, hops):
        relation_embeddings = np.random.default_rng(0).normal(
            size=(environment.graph.num_relations, 8)
        )
        diversity = DiversityReward(relation_embeddings, bandwidth=3.0)
        # First successful episode: no memory yet, reward 0, memory grows.
        first = _episode(environment, hops, reached_answer=True)
        assert diversity(first, environment) == 0.0
        # Re-walking a similar path is penalised, never rewarded.
        second = _episode(environment, hops, reached_answer=True)
        assert diversity(second, environment) <= 0.0

    def test_zero_one_reward(self, environment):
        assert ZeroOneReward()(_episode(environment, 2, True), environment) == 1.0
        assert ZeroOneReward()(_episode(environment, 2, False), environment) == 0.0


class TestCompositeReward:
    @given(hops=st.integers(min_value=0, max_value=4), reached=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_composite_bounded_by_weighted_components(self, environment, hops, reached):
        relation_embeddings = np.random.default_rng(1).normal(
            size=(environment.graph.num_relations, 8)
        )
        config = RewardConfig()
        reward = build_reward(config, scorer=None, relation_embeddings=relation_embeddings)
        state = _episode(environment, hops, reached)
        value = reward(state, environment)
        # Each component lies in [-1, 1] and the λ weights sum to one.
        assert -1.0 <= value <= 1.0

    def test_composite_is_weighted_sum(self, environment):
        relation_embeddings = np.zeros((environment.graph.num_relations, 4))
        config = RewardConfig(lambda_destination=0.2, lambda_distance=0.5, lambda_diversity=0.3)
        composite = build_reward(config, scorer=None, relation_embeddings=relation_embeddings)
        state = _episode(environment, 2, reached_answer=True)
        expected = (
            0.2 * composite.destination(state, environment)
            + 0.5 * composite.distance(state, environment)
            + 0.3 * composite.diversity(state, environment)
        )
        # Recompute on a fresh state because the diversity memory mutates.
        composite.reset()
        state = _episode(environment, 2, reached_answer=True)
        assert composite(state, environment) == pytest.approx(expected)

    def test_reset_clears_diversity_memory(self, environment):
        relation_embeddings = np.ones((environment.graph.num_relations, 4))
        composite = build_reward(RewardConfig(), scorer=None, relation_embeddings=relation_embeddings)
        state = _episode(environment, 2, reached_answer=True)
        composite(state, environment)
        assert composite.diversity.known_paths(state.query.relation) == 1
        composite.reset()
        assert composite.diversity.known_paths(state.query.relation) == 0

    def test_build_reward_requires_embeddings_for_diversity(self):
        with pytest.raises(ValueError):
            build_reward(RewardConfig(), scorer=None, relation_embeddings=None)
