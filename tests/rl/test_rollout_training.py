"""Tests for rollouts, beam search, imitation, and REINFORCE training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import MMKGRAgent
from repro.core.config import MMKGRConfig
from repro.features.extraction import FeatureStore
from repro.rl.environment import MKGEnvironment, Query
from repro.rl.imitation import ImitationConfig, ImitationTrainer, find_demonstration_path
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer
from repro.rl.rewards import ZeroOneReward
from repro.rl.rollout import BeamSearchResult, beam_search, sample_episode


@pytest.fixture(scope="module")
def setup(request):
    """Shared tiny agent + environment built on the synthetic tiny dataset."""
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    features = FeatureStore(tiny_dataset.mkg, structural_dim=8, rng=np.random.default_rng(0))
    config = MMKGRConfig(
        structural_dim=8,
        history_dim=8,
        auxiliary_dim=8,
        attention_dim=8,
        joint_dim=8,
        policy_hidden_dim=16,
        max_steps=3,
        max_actions=16,
        seed=0,
    )
    agent = MMKGRAgent(features, config=config, rng=0)
    environment = MKGEnvironment(tiny_dataset.train_graph, max_steps=3, max_actions=16)
    return tiny_dataset, agent, environment


class TestSampleEpisode:
    def test_episode_terminates(self, setup):
        dataset, agent, environment = setup
        triple = dataset.splits.train[0]
        episode = sample_episode(
            agent, environment, Query(triple.head, triple.relation, triple.tail), rng=0
        )
        assert environment.is_terminal(episode.state)
        assert len(episode.log_probs) == environment.max_steps
        assert episode.path_length <= environment.max_steps

    def test_greedy_is_deterministic(self, setup):
        dataset, agent, environment = setup
        triple = dataset.splits.train[1]
        query = Query(triple.head, triple.relation, triple.tail)
        first = sample_episode(agent, environment, query, rng=0, greedy=True)
        second = sample_episode(agent, environment, query, rng=99, greedy=True)
        assert first.state.path == second.state.path


class TestBeamSearch:
    def test_returns_candidates_with_scores(self, setup):
        dataset, agent, environment = setup
        triple = dataset.splits.test[0]
        result = beam_search(
            agent, environment, Query(triple.head, triple.relation, triple.tail), beam_width=4
        )
        assert result.entity_log_probs
        assert result.num_entities == dataset.graph.num_entities
        ranked = result.ranked_entities()
        assert all(ranked[i][1] >= ranked[i + 1][1] for i in range(len(ranked) - 1))

    def test_rank_of_reached_vs_unreached(self, setup):
        dataset, agent, environment = setup
        triple = dataset.splits.test[0]
        result = beam_search(
            agent, environment, Query(triple.head, triple.relation, triple.tail), beam_width=4
        )
        best = result.best_entity()
        assert result.rank_of(best) == 1
        unreached = next(
            e for e in range(dataset.graph.num_entities) if e not in result.entity_log_probs
        )
        assert result.rank_of(unreached) > len(result.entity_log_probs)
        assert result.score_of(unreached) == float("-inf")

    def test_tied_scores_rank_by_ascending_entity_id(self):
        # Regression: ties used to be broken by dict insertion order, so the
        # same beam could rank differently depending on traversal order.
        result = BeamSearchResult(
            query=Query(0, 0, 1),
            entity_log_probs={9: -1.0, 2: -0.5, 7: -1.0, 4: -1.0},
            entity_hops={9: 1, 2: 1, 7: 2, 4: 2},
            paths={},
            num_entities=20,
        )
        assert result.ranked_entities() == [(2, -0.5), (4, -1.0), (7, -1.0), (9, -1.0)]
        assert result.best_entity() == 2
        assert result.rank_of(4) == 2
        assert result.rank_of(7) == 3
        assert result.rank_of(9) == 4
        # Filtering a tied competitor promotes the remaining ties in id order.
        assert result.rank_of(7, filtered_out=[4]) == 2

    def test_ranking_is_independent_of_insertion_order(self):
        scores = {9: -1.0, 2: -0.5, 7: -1.0, 4: -1.0}
        forward = BeamSearchResult(
            query=Query(0, 0, 1),
            entity_log_probs=dict(scores),
            entity_hops={},
            paths={},
            num_entities=20,
        )
        reversed_order = BeamSearchResult(
            query=Query(0, 0, 1),
            entity_log_probs=dict(reversed(list(scores.items()))),
            entity_hops={},
            paths={},
            num_entities=20,
        )
        assert forward.ranked_entities() == reversed_order.ranked_entities()
        for entity in scores:
            assert forward.rank_of(entity) == reversed_order.rank_of(entity)

    def test_unreached_rank_follows_expected_rank_convention(self):
        # rank = len(candidates) + max(1, remaining // 2): the unreached
        # entity sits in expectation mid-way through the unreached pool.
        result = BeamSearchResult(
            query=Query(0, 0, 1),
            entity_log_probs={2: -0.5, 4: -1.0},
            entity_hops={},
            paths={},
            num_entities=12,
        )
        assert result.rank_of(11) == 2 + (12 - 2) // 2
        # Filtering shrinks both the candidate list and the unreached pool.
        assert result.rank_of(11, filtered_out=[2]) == 1 + max(1, (12 - 1 - 1) // 2)

    def test_invalid_beam_width(self, setup):
        dataset, agent, environment = setup
        triple = dataset.splits.test[0]
        with pytest.raises(ValueError):
            beam_search(
                agent, environment, Query(triple.head, triple.relation, triple.tail), beam_width=0
            )


class TestImitation:
    def test_find_demonstration_path_reaches_answer(self, tiny_graph):
        environment_graph = tiny_graph
        query = Query(
            source=tiny_graph.entity_id("alice"),
            relation=tiny_graph.relation_id("lives_in"),
            answer=tiny_graph.entity_id("berlin"),
        )
        path = find_demonstration_path(environment_graph, query, max_steps=3)
        assert path is not None
        assert path[-1][1] == query.answer
        # The masked direct edge is not used as the first step.
        assert path[0] != (query.relation, query.answer)

    def test_find_demonstration_path_handles_trivial_query(self, tiny_graph):
        query = Query(source=0, relation=0, answer=0)
        assert find_demonstration_path(tiny_graph, query, max_steps=2) == []

    def test_imitation_reduces_loss(self, setup):
        dataset, agent, environment = setup
        trainer = ImitationTrainer(
            agent,
            environment,
            ImitationConfig(epochs=4, batch_size=8, learning_rate=5e-3, max_demonstrations=20),
            rng=0,
        )
        losses = trainer.fit(dataset.splits.train[:30])
        assert losses and losses[-1] < losses[0]

    def test_zero_epochs_is_noop(self, setup):
        dataset, agent, environment = setup
        trainer = ImitationTrainer(agent, environment, ImitationConfig(epochs=0), rng=0)
        assert trainer.fit(dataset.splits.train[:10]) == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ImitationConfig(epochs=-1)
        with pytest.raises(ValueError):
            ImitationConfig(batch_size=0)


class TestReinforce:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReinforceConfig(epochs=0)
        with pytest.raises(ValueError):
            ReinforceConfig(rollouts_per_query=0)
        with pytest.raises(ValueError):
            ReinforceConfig(baseline_decay=1.0)

    def test_fit_records_history(self, setup):
        dataset, agent, environment = setup
        trainer = ReinforceTrainer(
            agent,
            environment,
            ZeroOneReward(),
            ReinforceConfig(epochs=2, batch_size=16, learning_rate=1e-3),
            rng=0,
        )
        history = trainer.fit(dataset.splits.train[:20])
        assert len(history.epoch_rewards) == 2
        assert len(history.epoch_success_rates) == 2
        assert all(0.0 <= rate <= 1.0 for rate in history.epoch_success_rates)

    def test_fit_empty_queries_raises(self, setup):
        _, agent, environment = setup
        trainer = ReinforceTrainer(agent, environment, ZeroOneReward(), rng=0)
        with pytest.raises(ValueError):
            trainer.fit([])

    def test_non_module_agent_rejected(self, setup):
        _, _, environment = setup
        with pytest.raises(TypeError):
            ReinforceTrainer(object(), environment, ZeroOneReward())
