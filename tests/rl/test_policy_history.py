"""Tests for the policy network and the path-history encoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.rl.history import PathHistoryEncoder
from repro.rl.policy import PolicyNetwork, stack_action_embeddings


class TestPathHistoryEncoder:
    def test_reset_then_hidden_shape(self, rng):
        encoder = PathHistoryEncoder(embedding_dim=6, hidden_dim=5, rng=0)
        hidden = encoder.reset(rng.normal(size=6))
        assert hidden.shape == (5,)
        assert encoder.hidden.shape == (5,)

    def test_update_changes_hidden(self, rng):
        encoder = PathHistoryEncoder(embedding_dim=6, hidden_dim=5, rng=0)
        encoder.reset(rng.normal(size=6))
        before = encoder.hidden.data.copy()
        encoder.update(rng.normal(size=6), rng.normal(size=6))
        assert not np.allclose(before, encoder.hidden.data)

    def test_update_before_reset_raises(self, rng):
        encoder = PathHistoryEncoder(embedding_dim=6, hidden_dim=5, rng=0)
        with pytest.raises(RuntimeError):
            encoder.update(rng.normal(size=6), rng.normal(size=6))
        with pytest.raises(RuntimeError):
            _ = encoder.hidden

    def test_bad_source_shape_raises(self, rng):
        encoder = PathHistoryEncoder(embedding_dim=6, hidden_dim=5, rng=0)
        with pytest.raises(ValueError):
            encoder.reset(rng.normal(size=4))

    def test_snapshot_restore_roundtrip(self, rng):
        encoder = PathHistoryEncoder(embedding_dim=6, hidden_dim=5, rng=0)
        encoder.reset(rng.normal(size=6))
        snapshot = encoder.snapshot()
        encoder.update(rng.normal(size=6), rng.normal(size=6))
        diverged = encoder.hidden.data.copy()
        encoder.restore(snapshot)
        assert not np.allclose(encoder.hidden.data, diverged)
        np.testing.assert_allclose(encoder.hidden.data, snapshot[0].reshape(-1))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            PathHistoryEncoder(embedding_dim=0, hidden_dim=5)


class TestPolicyNetwork:
    def test_log_probs_normalise(self, rng):
        policy = PolicyNetwork(fusion_dim=6, action_dim=8, hidden_dim=10, rng=0)
        fused = Tensor(rng.normal(size=6))
        actions = rng.normal(size=(5, 8))
        log_probs = policy(fused, actions)
        assert log_probs.shape == (5,)
        assert np.exp(log_probs.data).sum() == pytest.approx(1.0)

    def test_probabilities_match_log_probs(self, rng):
        policy = PolicyNetwork(fusion_dim=6, action_dim=8, rng=0)
        fused = Tensor(rng.normal(size=6))
        actions = rng.normal(size=(4, 8))
        probs = policy.action_probabilities(fused, actions)
        np.testing.assert_allclose(probs, np.exp(policy(fused, actions).data), atol=1e-9)

    def test_bad_action_shape_raises(self, rng):
        policy = PolicyNetwork(fusion_dim=6, action_dim=8, rng=0)
        with pytest.raises(ValueError):
            policy(Tensor(rng.normal(size=6)), rng.normal(size=(4, 7)))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            PolicyNetwork(fusion_dim=0, action_dim=4)

    def test_gradients_flow(self, rng):
        policy = PolicyNetwork(fusion_dim=6, action_dim=8, rng=0)
        fused = Tensor(rng.normal(size=6), requires_grad=True)
        log_probs = policy(fused, rng.normal(size=(3, 8)))
        log_probs[0].backward()
        assert fused.grad is not None
        assert policy.hidden_layer.weight.grad is not None


class TestStackActionEmbeddings:
    def test_rows_are_relation_entity_concat(self, rng):
        relations = rng.normal(size=(4, 3))
        entities = rng.normal(size=(6, 3))
        matrix = stack_action_embeddings([(1, 2), (0, 5)], relations, entities)
        assert matrix.shape == (2, 6)
        np.testing.assert_allclose(matrix[0], np.concatenate([relations[1], entities[2]]))

    def test_empty_actions_raise(self, rng):
        with pytest.raises(ValueError):
            stack_action_embeddings([], rng.normal(size=(2, 3)), rng.normal(size=(2, 3)))
