"""Tests for the MKG environment (MDP)."""

from __future__ import annotations

import pytest

from repro.rl.environment import MKGEnvironment, Query


@pytest.fixture()
def environment(tiny_graph) -> MKGEnvironment:
    return MKGEnvironment(tiny_graph, max_steps=3)


@pytest.fixture()
def query(tiny_graph) -> Query:
    return Query(
        source=tiny_graph.entity_id("alice"),
        relation=tiny_graph.relation_id("lives_in"),
        answer=tiny_graph.entity_id("berlin"),
    )


class TestReset:
    def test_reset_starts_at_source(self, environment, query):
        state = environment.reset(query)
        assert state.current_entity == query.source
        assert state.step == 0 and not state.stopped

    def test_reset_out_of_range_raises(self, environment):
        with pytest.raises(IndexError):
            environment.reset(Query(source=999, relation=0, answer=0))

    def test_invalid_max_steps(self, tiny_graph):
        with pytest.raises(ValueError):
            MKGEnvironment(tiny_graph, max_steps=0)


class TestActions:
    def test_actions_include_no_op(self, environment, query, tiny_graph):
        state = environment.reset(query)
        actions = environment.available_actions(state)
        assert (tiny_graph.no_op_relation_id, query.source) in actions

    def test_direct_answer_edge_masked_at_first_step(self, environment, query):
        state = environment.reset(query)
        actions = environment.available_actions(state)
        assert (query.relation, query.answer) not in actions

    def test_direct_edge_not_masked_later(self, environment, query, tiny_graph):
        state = environment.reset(query)
        no_op = tiny_graph.no_op_relation_id
        environment.step(state, (no_op, query.source))
        actions = environment.available_actions(state)
        assert (query.relation, query.answer) in actions

    def test_unmasked_environment_keeps_direct_edge(self, tiny_graph, query):
        environment = MKGEnvironment(tiny_graph, max_steps=3, mask_answer_edge=False)
        state = environment.reset(query)
        assert (query.relation, query.answer) in environment.available_actions(state)

    def test_max_actions_truncates(self, tiny_graph, query):
        environment = MKGEnvironment(tiny_graph, max_steps=3, max_actions=1)
        state = environment.reset(query)
        actions = environment.available_actions(state)
        # 1 graph edge + the NO_OP self-loop
        assert len(actions) == 2


class TestTransitions:
    def test_step_updates_state(self, environment, query, tiny_graph):
        state = environment.reset(query)
        works = tiny_graph.relation_id("works_for")
        acme = tiny_graph.entity_id("acme")
        environment.step(state, (works, acme))
        assert state.current_entity == acme
        assert state.step == 1
        assert state.path == [(works, acme)]

    def test_episode_terminates_at_max_steps(self, environment, query, tiny_graph):
        state = environment.reset(query)
        no_op = tiny_graph.no_op_relation_id
        for _ in range(3):
            environment.step(state, (no_op, state.current_entity))
        assert environment.is_terminal(state)
        with pytest.raises(RuntimeError):
            environment.step(state, (no_op, state.current_entity))

    def test_hops_ignore_no_op(self, environment, query, tiny_graph):
        state = environment.reset(query)
        no_op = tiny_graph.no_op_relation_id
        works = tiny_graph.relation_id("works_for")
        acme = tiny_graph.entity_id("acme")
        environment.step(state, (works, acme))
        environment.step(state, (no_op, acme))
        assert state.hops == 1
        assert state.step == 2

    def test_reached_answer(self, environment, query, tiny_graph):
        state = environment.reset(query)
        works = tiny_graph.relation_id("works_for")
        located = tiny_graph.relation_id("located_in")
        environment.step(state, (works, tiny_graph.entity_id("acme")))
        environment.step(state, (located, tiny_graph.entity_id("berlin")))
        assert environment.reached_answer(state)

    def test_visited_entities_and_relation_path(self, environment, query, tiny_graph):
        state = environment.reset(query)
        works = tiny_graph.relation_id("works_for")
        acme = tiny_graph.entity_id("acme")
        environment.step(state, (works, acme))
        assert state.visited_entities() == [query.source, acme]
        assert state.relation_path() == [works]
