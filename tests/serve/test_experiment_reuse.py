"""ExperimentRunner reuses trained reasoners across tables instead of retraining."""

from __future__ import annotations

import pytest

from repro.core.experiment import ExperimentRunner


@pytest.fixture(scope="module")
def runner(request):
    tiny_preset = request.getfixturevalue("tiny_preset")
    return ExperimentRunner(dataset_names=("wn9-img-txt",), preset=tiny_preset, seed=1)


class TestReasonerCache:
    def test_reasoner_for_is_cached(self, runner):
        first = runner.reasoner_for("wn9-img-txt", "MTRL")
        second = runner.reasoner_for("wn9-img-txt", "MTRL")
        assert first is second

    def test_tables_share_trained_models(self, runner, monkeypatch):
        runner.table3_entity_link_prediction(
            "wn9-img-txt", baselines=("MTRL",), include_mmkgr=True
        )
        trained = dict(runner._reasoners)

        # Any further fit would be a regression: Table IV must reuse the
        # models Table III trained for the same dataset/preset.
        import repro.core.experiment as experiment_module

        def fail_fit(*args, **kwargs):  # pragma: no cover - regression trap
            raise AssertionError("table4 retrained a model table3 already trained")

        monkeypatch.setattr(experiment_module, "fit_baseline", fail_fit)
        monkeypatch.setattr(
            experiment_module.MMKGRPipeline,
            "train",
            lambda self, *a, **k: fail_fit(),
        )
        results = runner.table4_relation_map(
            "wn9-img-txt", baselines=("MTRL",), include_mmkgr=True
        )
        assert set(results) == {"MTRL", "MMKGR"}
        assert dict(runner._reasoners) == trained

    def test_distinct_presets_train_separately(self, runner):
        from dataclasses import replace

        preset = runner.preset.with_overrides(
            model=replace(runner.preset.model, max_steps=2)
        )
        default = runner.reasoner_for("wn9-img-txt", "MTRL")
        other = runner.reasoner_for("wn9-img-txt", "MTRL", preset=preset)
        assert default is not other


class TestRegistryPublishing:
    def test_runner_publishes_every_newly_trained_reasoner(
        self, tiny_preset, tmp_path
    ):
        runner = ExperimentRunner(
            dataset_names=("wn9-img-txt",),
            preset=tiny_preset,
            seed=1,
            registry=tmp_path / "registry",
        )
        runner.reasoner_for("wn9-img-txt", "MTRL")
        runner.reasoner_for("wn9-img-txt", "MTRL")  # cache hit: no second publish
        listing = runner.registry.list_models()
        assert [m["name"] for m in listing] == ["wn9-img-txt.MTRL"]
        assert listing[0]["versions"] == [1]
        restored = runner.registry.load("wn9-img-txt.MTRL@latest")
        assert restored.name == "MTRL"
