"""End-to-end tests of the Reasoner facades: fit, query, batch, save/load.

The checkpoint round-trip tests pin the satellite requirement: a saved and
restored reasoner must reproduce *identical* query rankings on a fixed seed,
for MMKGR and for the baselines.
"""

from __future__ import annotations

import pytest

from repro.baselines.registry import available_baselines, fit_baseline
from repro.rl.environment import Query
from repro.rl.rollout import beam_search
from repro.serve import Prediction, Reasoner, load_reasoner
from repro.serve.reasoner import EmbeddingReasoner


@pytest.fixture(scope="module")
def fitted_reasoner(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    tiny_preset = request.getfixturevalue("tiny_preset")
    return Reasoner(preset=tiny_preset, rng=0).fit(tiny_dataset)


@pytest.fixture(scope="module")
def test_queries(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    return [(t.head, t.relation) for t in tiny_dataset.splits.test[:8]]


def _ranking(predictions):
    return [(p.entity, round(p.score, 10)) for p in predictions]


class TestQuery:
    def test_query_returns_ranked_predictions(self, fitted_reasoner, test_queries):
        head, relation = test_queries[0]
        predictions = fitted_reasoner.query(head, relation, k=5)
        assert predictions, "the beam should reach at least one entity"
        assert all(isinstance(p, Prediction) for p in predictions)
        scores = [p.score for p in predictions]
        assert scores == sorted(scores, reverse=True)

    def test_query_accepts_entity_names(self, fitted_reasoner, test_queries):
        graph = fitted_reasoner.graph
        head, relation = test_queries[0]
        by_name = fitted_reasoner.query(
            graph.entities.symbol(head), graph.relations.symbol(relation), k=3
        )
        by_id = fitted_reasoner.query(head, relation, k=3)
        assert _ranking(by_name) == _ranking(by_id)

    def test_predictions_carry_reasoning_paths(self, fitted_reasoner, test_queries):
        head, relation = test_queries[0]
        top = fitted_reasoner.query(head, relation, k=1)[0]
        if top.path:  # the agent may legitimately stay at the source
            assert top.path[-1][1] == top.entity
            assert top.render_path().endswith(top.entity_name)

    def test_unfitted_reasoner_rejects_queries(self, tiny_preset):
        with pytest.raises(RuntimeError):
            Reasoner(preset=tiny_preset).query(0, 0)

    def test_invalid_k_rejected(self, fitted_reasoner):
        with pytest.raises(ValueError):
            fitted_reasoner.query(0, 0, k=0)


class TestQueryBatch:
    def test_batch_matches_sequential_queries(self, fitted_reasoner, test_queries):
        batched = fitted_reasoner.query_batch(test_queries, k=3)
        sequential = [fitted_reasoner.query(h, r, k=3) for h, r in test_queries]
        assert [list(map(_ranking, batched))] == [list(map(_ranking, sequential))]

    def test_batch_top1_matches_legacy_beam_search(self, fitted_reasoner, test_queries):
        pipeline = fitted_reasoner.pipeline
        batched = fitted_reasoner.query_batch(test_queries, k=1)
        for (head, relation), predictions in zip(test_queries, batched):
            legacy = beam_search(
                pipeline.agent,
                pipeline.environment,
                Query(head, relation, -1),
                beam_width=fitted_reasoner.engine.beam_width,
            )
            assert predictions[0].entity == legacy.best_entity()

    def test_empty_batch(self, fitted_reasoner):
        assert fitted_reasoner.query_batch([]) == []

    def test_cache_is_populated_by_queries(self, fitted_reasoner, test_queries):
        fitted_reasoner.query_batch(test_queries)
        stats = fitted_reasoner.cache_stats()
        assert stats["actions_hits"] > 0
        assert stats["matrix_hits"] > 0


class TestPipelineReasonerStage:
    def test_trained_pipeline_exposes_reasoner(self, fitted_reasoner):
        reasoner = fitted_reasoner.pipeline.reasoner(name="stage")
        assert reasoner.name == "stage"
        assert reasoner.is_fitted

    def test_untrained_pipeline_refuses(self, tiny_dataset, tiny_preset):
        from repro.core.trainer import MMKGRPipeline

        with pytest.raises(RuntimeError):
            MMKGRPipeline(tiny_dataset, preset=tiny_preset).reasoner()


class TestCheckpointRoundTrip:
    def test_mmkgr_roundtrip_identical_rankings(
        self, fitted_reasoner, test_queries, tmp_path
    ):
        before = fitted_reasoner.query_batch(test_queries, k=5)
        directory = fitted_reasoner.save(tmp_path / "mmkgr")
        restored = load_reasoner(directory)
        after = restored.query_batch(test_queries, k=5)
        assert list(map(_ranking, before)) == list(map(_ranking, after))

    # MTRL covers the pickle family; NeuralLP the "rules" dispatch; MINERVA
    # the checkpoint family; RLH and FIRE the agent/environment
    # specialisations restored from the manifest.
    @pytest.mark.parametrize("name", ["MTRL", "NeuralLP", "MINERVA", "RLH", "FIRE"])
    def test_baseline_roundtrip_identical_rankings(
        self, name, tiny_dataset, tiny_preset, test_queries, tmp_path
    ):
        reasoner = fit_baseline(name, tiny_dataset, preset=tiny_preset, rng=0)
        before = reasoner.query_batch(test_queries, k=5)
        directory = reasoner.save(tmp_path / name)
        restored = load_reasoner(directory)
        assert restored.name == name
        after = restored.query_batch(test_queries, k=5)
        assert list(map(_ranking, before)) == list(map(_ranking, after))

    def test_load_reasoner_rejects_non_reasoner_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_reasoner(tmp_path)


class TestEveryBaselineThroughProtocol:
    @pytest.mark.parametrize("name", sorted(["MTRL", "TransAE", "GAATs", "NeuralLP"]))
    def test_single_hop_baselines_are_queryable(
        self, name, tiny_dataset, tiny_preset, test_queries
    ):
        reasoner = fit_baseline(name, tiny_dataset, preset=tiny_preset, rng=0)
        assert isinstance(reasoner, EmbeddingReasoner)
        answers = reasoner.query_batch(test_queries, k=3)
        assert len(answers) == len(test_queries)
        assert all(len(predictions) == 3 for predictions in answers)

    def test_registry_covers_all_baselines(self):
        assert set(available_baselines()) == {
            "MTRL",
            "TransAE",
            "MINERVA",
            "FIRE",
            "GAATs",
            "NeuralLP",
            "RLH",
        }
