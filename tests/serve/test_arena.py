"""Model-arena tests: flatten/map round-trip, zero-copy guarantees, loaders.

The arena is the process backend's shared-memory substrate, so the tests
pin the physical properties — read-only views whose base chain reaches one
``np.memmap`` — not just value equality.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines.registry import fit_baseline
from repro.core.checkpoint import AGENT_FILE, STRUCTURAL_FILE
from repro.serve import (
    ModelRegistry,
    Reasoner,
    arena_manifest,
    load_arena_reasoner,
    open_arena,
    write_arena,
)
from repro.serve.arena import ARENA_FILE, ARENA_MANIFEST_FILE, load_serving_reasoner


@pytest.fixture(scope="module")
def fitted_reasoner(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    tiny_preset = request.getfixturevalue("tiny_preset")
    return Reasoner(preset=tiny_preset, rng=0).fit(tiny_dataset)


@pytest.fixture(scope="module")
def test_queries(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    return [(t.head, t.relation) for t in tiny_dataset.splits.test[:6]]


@pytest.fixture(scope="module")
def embedding_reasoner(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    tiny_preset = request.getfixturevalue("tiny_preset")
    return fit_baseline("MTRL", tiny_dataset, preset=tiny_preset, rng=0)


@pytest.fixture()
def saved(fitted_reasoner, tmp_path):
    save_dir = tmp_path / "save"
    fitted_reasoner.save(save_dir)
    manifest = write_arena(save_dir)
    return save_dir, manifest


@pytest.fixture()
def embedding_save(embedding_reasoner, tmp_path):
    save_dir = tmp_path / "embedding"
    embedding_reasoner.save(save_dir)
    return save_dir


def _ranking(predictions):
    return [(p.entity, round(p.score, 10)) for p in predictions]


def _memmap_base(view):
    """Walk a view's base chain down to the np.memmap it aliases."""
    base = view
    while isinstance(base, np.ndarray) and not isinstance(base, np.memmap):
        base = base.base
    return base


def _os_mapping(view):
    """The terminal object of the base chain: the one OS-level mmap."""
    base = view
    while getattr(base, "base", None) is not None:
        base = base.base
    return base


class TestWriteArena:
    def test_writes_arena_and_sidecar_manifest(self, saved):
        save_dir, manifest = saved
        assert (save_dir / ARENA_FILE).exists()
        assert (save_dir / ARENA_MANIFEST_FILE).exists()
        assert manifest["format_version"] == 1
        assert manifest["dtype"] == "float64"
        sidecar = json.loads((save_dir / ARENA_MANIFEST_FILE).read_text())
        assert sidecar == manifest

    def test_manifest_covers_every_archived_tensor(self, saved):
        save_dir, manifest = saved
        with np.load(save_dir / STRUCTURAL_FILE) as archive:
            structural_keys = {f"structural.{key}" for key in archive.files}
        with np.load(save_dir / AGENT_FILE) as archive:
            agent_keys = {f"agent.{key}" for key in archive.files}
        names = set(manifest["tensors"])
        assert structural_keys <= names
        assert agent_keys == {name for name in names if name.startswith("agent.")}
        total = sum(
            int(np.prod(spec["shape"])) if spec["shape"] else 1
            for spec in manifest["tensors"].values()
        )
        assert total == manifest["total_elements"]

    def test_no_weight_archives_means_no_arena(self, embedding_save):
        assert write_arena(embedding_save) is None
        assert arena_manifest(embedding_save) is None


class TestOpenArena:
    def test_round_trips_every_tensor_value(self, saved):
        save_dir, _ = saved
        views = open_arena(save_dir)
        with np.load(save_dir / STRUCTURAL_FILE) as archive:
            for key in archive.files:
                name = f"structural.{key}"
                if name in views:
                    np.testing.assert_array_equal(views[name], archive[key])
        with np.load(save_dir / AGENT_FILE) as archive:
            for key in archive.files:
                np.testing.assert_array_equal(views[f"agent.{key}"], archive[key])

    def test_views_are_read_only_zero_copy_slices_of_one_mmap(self, saved):
        save_dir, _ = saved
        views = open_arena(save_dir)
        assert views
        for view in views.values():
            assert not view.flags.writeable
            assert not view.flags.owndata
            assert isinstance(_memmap_base(view), np.memmap)
        # one shared OS mapping, not one mmap per tensor
        mappings = {id(_os_mapping(view)) for view in views.values()}
        assert len(mappings) == 1

    def test_writing_through_a_view_faults(self, saved):
        save_dir, _ = saved
        views = open_arena(save_dir)
        view = views["structural.entity_embeddings"]
        with pytest.raises((ValueError, RuntimeError)):
            view[0, 0] = 1.0

    def test_rejects_foreign_format_or_dtype(self, saved):
        save_dir, manifest = saved
        with pytest.raises(ValueError, match="format version"):
            open_arena(save_dir, manifest={**manifest, "format_version": 99})
        with pytest.raises(ValueError, match="dtype"):
            open_arena(save_dir, manifest={**manifest, "dtype": "float16"})

    def test_rejects_tensor_overrunning_the_file(self, saved):
        save_dir, manifest = saved
        doctored = json.loads(json.dumps(manifest))
        spec = next(iter(doctored["tensors"].values()))
        spec["offset"] = doctored["total_elements"]
        with pytest.raises(ValueError, match="overruns"):
            open_arena(save_dir, manifest=doctored)

    def test_missing_arena_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no model arena"):
            open_arena(tmp_path)


class TestManifestResolution:
    def test_publish_embeds_manifest_in_version_json(self, fitted_reasoner, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        version = registry.publish(fitted_reasoner, name="mmkgr")
        assert (version.path / ARENA_FILE).exists()
        assert "arena" in version.manifest
        assert arena_manifest(version.path) == version.manifest["arena"]

    def test_version_json_manifest_wins_over_sidecar(self, saved):
        save_dir, manifest = saved
        embedded = {**manifest, "marker": "from-version-json"}
        (save_dir / "version.json").write_text(
            json.dumps({"arena": embedded}), encoding="utf-8"
        )
        assert arena_manifest(save_dir)["marker"] == "from-version-json"

    def test_sidecar_fallback_for_plain_saves(self, saved):
        save_dir, manifest = saved
        assert arena_manifest(save_dir) == manifest


class TestArenaReasoner:
    def test_predictions_match_the_original(
        self, fitted_reasoner, saved, test_queries
    ):
        save_dir, _ = saved
        attached = load_arena_reasoner(save_dir)
        reference = fitted_reasoner.query_batch(test_queries, k=5)
        got = attached.query_batch(test_queries, k=5)
        assert [_ranking(ps) for ps in reference] == [_ranking(ps) for ps in got]

    def test_agent_weights_stay_views_into_the_mmap(self, saved):
        save_dir, _ = saved
        attached = load_arena_reasoner(save_dir)
        entity = attached.pipeline.features.entity_embeddings
        assert not entity.flags.writeable
        assert isinstance(_memmap_base(entity), np.memmap)

    def test_rejects_non_agent_saves(self, embedding_save):
        with pytest.raises(ValueError, match="only the agent family"):
            load_arena_reasoner(embedding_save)

    def test_load_serving_reasoner_reports_attachment(self, saved, embedding_save):
        save_dir, _ = saved
        _, attached = load_serving_reasoner(save_dir)
        assert attached is True
        _, attached = load_serving_reasoner(embedding_save)
        assert attached is False
