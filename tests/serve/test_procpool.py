"""Process-backend tests: parity with threads, crash recovery, hot swap.

Worker processes are spawned (not forked), so each boot pays an interpreter
start — the tests share one published registry version and keep worker
counts small.  The crash-recovery test SIGKILLs a live worker mid-burst and
requires every in-flight future to resolve: either retried successfully on
the respawned worker or failed cleanly with a server-side error, never hung.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.serve import (
    ModelRegistry,
    Reasoner,
    ReasoningServer,
    ServeConfig,
    WorkerCrashError,
)

_PROC_CONFIG = dict(
    backend="processes",
    max_batch_size=8,
    max_wait_ms=2.0,
    heartbeat_interval_s=0.2,
    request_timeout_s=60.0,
)


@pytest.fixture(scope="module")
def fitted_reasoner(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    tiny_preset = request.getfixturevalue("tiny_preset")
    return Reasoner(preset=tiny_preset, rng=0).fit(tiny_dataset)


@pytest.fixture(scope="module")
def test_queries(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    return [(t.head, t.relation) for t in tiny_dataset.splits.test[:6]]


@pytest.fixture(scope="module")
def registry_root(fitted_reasoner, tmp_path_factory):
    root = tmp_path_factory.mktemp("registry")
    registry = ModelRegistry(root)
    registry.publish(fitted_reasoner, name="mmkgr", aliases=("prod",))
    return root


@pytest.fixture(scope="module")
def thread_baseline(registry_root, test_queries):
    """Reference predictions and stats schema from the threads backend."""
    config = ServeConfig(max_batch_size=8, max_wait_ms=2.0)
    with ReasoningServer(
        registry=ModelRegistry(registry_root), default_model="mmkgr@prod", config=config
    ) as server:
        predictions = [server.query(h, r, k=5) for h, r in test_queries]
        stats = server.stats_dict()
    return predictions, stats


def _ranking(predictions):
    return [(p.entity, round(p.score, 10)) for p in predictions]


def _rankings(batches):
    return [_ranking(predictions) for predictions in batches]


def _wait_for_alive(server, expected, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if server.stats_dict()["workers"]["alive"] == expected:
            return
        time.sleep(0.1)
    raise AssertionError(
        f"worker pool never returned to {expected} alive: "
        f"{server.stats_dict()['workers']}"
    )


@pytest.fixture(scope="module")
def process_server(registry_root):
    config = ServeConfig(workers=2, **_PROC_CONFIG)
    server = ReasoningServer(
        registry=ModelRegistry(registry_root), default_model="mmkgr@prod", config=config
    )
    server.start()
    yield server
    server.close()


class TestBackendParity:
    def test_workers_attach_the_arena(self, process_server):
        entry = process_server.pool.entry("mmkgr")
        assert entry.arena_attached
        pids = entry.worker_pids()
        assert len(pids) == 2
        assert all(pid != os.getpid() for pid in pids)

    def test_predictions_match_threads_backend(
        self, process_server, thread_baseline, test_queries
    ):
        reference, _ = thread_baseline
        got = [process_server.query(h, r, k=5) for h, r in test_queries]
        assert _rankings(got) == _rankings(reference)

    def test_stats_schema_matches_threads_modulo_backend_blocks(
        self, process_server, thread_baseline
    ):
        _, thread_stats = thread_baseline
        proc_stats = process_server.stats_dict()
        assert thread_stats["backend"] == "threads"
        assert proc_stats["backend"] == "processes"
        # Same surface except each backend's own block: the threads side
        # reports its shared LRU cache, the process side its worker pool.
        assert set(thread_stats) ^ set(proc_stats) == {"cache", "workers"}
        workers = proc_stats["workers"]
        assert workers["configured"] == 2
        assert workers["alive"] == 2
        assert workers["arena_attached"] is True
        assert len(workers["pids"]) == 2

    def test_client_errors_stay_client_errors(self, process_server):
        with pytest.raises((KeyError, IndexError, ValueError, TypeError)):
            process_server.query("no-such-entity", 1, k=3)


class TestCrashRecovery:
    def test_sigkill_mid_burst_never_hangs(
        self, process_server, test_queries, thread_baseline
    ):
        server = process_server
        before = server.stats_dict()
        futures = [server.submit(h, r, k=5) for h, r in test_queries * 5]
        victim = server.pool.entry("mmkgr").worker_pids()[0]
        os.kill(victim, signal.SIGKILL)

        served, failures = 0, []
        for future in futures:
            try:
                future.result(timeout=120)
                served += 1
            except Exception as error:  # noqa: BLE001 - classified below
                failures.append(error)
        # Every future resolved; any casualty surfaced as the 5xx-class
        # crash error, not a client error and not a hang.
        assert served + len(failures) == len(futures)
        assert all(isinstance(error, WorkerCrashError) for error in failures)

        _wait_for_alive(server, expected=2)
        after = server.stats_dict()
        assert after["workers"]["restarts"] >= 1
        assert (
            after["errors_total"] - before["errors_total"] == len(failures)
        )

        # The respawned pool serves the exact reference rankings again.
        reference, _ = thread_baseline
        again = [server.query(h, r, k=5) for h, r in test_queries]
        assert _rankings(again) == _rankings(reference)


class TestHotSwap:
    def test_promote_and_reload_drains_onto_new_version(
        self, process_server, registry_root, fitted_reasoner, test_queries,
        thread_baseline,
    ):
        registry = ModelRegistry(registry_root)
        published = registry.publish(fitted_reasoner, name="mmkgr")
        registry.promote("mmkgr", "prod", published.version)

        resolved = process_server.reload("mmkgr")
        assert resolved.version == published.version
        assert process_server.pool.entry("mmkgr").version == published.version
        assert process_server.stats_dict()["version"] == published.version

        reference, _ = thread_baseline
        got = [process_server.query(h, r, k=5) for h, r in test_queries]
        assert _rankings(got) == _rankings(reference)


class TestInMemorySpill:
    def test_in_memory_reasoner_spills_and_attaches(
        self, fitted_reasoner, test_queries, thread_baseline
    ):
        config = ServeConfig(workers=1, **_PROC_CONFIG)
        server = ReasoningServer(fitted_reasoner, config=config)
        spill_dirs = list(server._spill_dirs)
        assert spill_dirs, "processes backend must spill an in-memory reasoner"
        try:
            server.start()
            assert server.pool.entry("MMKGR").arena_attached
            reference, _ = thread_baseline
            got = [server.query(h, r, k=5) for h, r in test_queries]
            assert _rankings(got) == _rankings(reference)
        finally:
            server.close()
        assert all(not spill.exists() for spill in spill_dirs)
