"""Tests for the serving-layer LRU caches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rl.environment import MKGEnvironment, Query
from repro.serve.cache import ActionSpaceCache, LRUCache


class TestLRUCache:
    def test_get_or_compute_caches(self):
        cache = LRUCache(maxsize=4)
        calls = []
        assert cache.get_or_compute("a", lambda: calls.append(1) or "va") == "va"
        assert cache.get_or_compute("a", lambda: calls.append(1) or "vb") == "va"
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_least_recently_used_is_evicted(self):
        cache = LRUCache(maxsize=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)  # refresh a
        cache.get_or_compute("c", lambda: 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)

    def test_clear_resets_statistics(self):
        cache = LRUCache(maxsize=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0
        assert cache.hit_rate == 0.0


class TestActionSpaceCache:
    @pytest.fixture
    def environment(self, tiny_graph):
        return MKGEnvironment(tiny_graph, max_steps=3)

    @pytest.fixture
    def cache(self, tiny_graph, environment):
        rng = np.random.default_rng(0)
        return ActionSpaceCache(
            environment,
            rng.normal(size=(tiny_graph.num_relations, 4)),
            rng.normal(size=(tiny_graph.num_entities, 4)),
        )

    def test_actions_match_environment(self, environment, cache):
        state = environment.reset(Query(0, 0, -1))
        assert cache.actions(state) == environment.available_actions(state)

    def test_repeat_lookup_hits(self, environment, cache):
        state = environment.reset(Query(0, 0, -1))
        cache.actions(state)
        cache.actions(state)
        assert cache.actions_cache.hits == 1
        assert cache.actions_cache.misses == 1

    def test_matrix_rows_stack_relation_and_entity(self, environment, cache):
        state = environment.reset(Query(0, 0, -1))
        actions = cache.actions(state)
        matrix = cache.action_matrix(state, actions)
        assert matrix.shape == (len(actions), 8)
        relation, entity = actions[0]
        expected = np.concatenate(
            [cache._relation_embeddings[relation], cache._entity_embeddings[entity]]
        )
        np.testing.assert_allclose(matrix[0], expected)

    def test_gold_answer_masking_bypasses_cache(self, environment, cache, tiny_graph):
        # A training-style query with a known gold answer masks the direct
        # edge at step 0; that lookup must not pollute the per-entity cache.
        alice = tiny_graph.entity_id("alice")
        lives_in = tiny_graph.relation_id("lives_in")
        berlin = tiny_graph.entity_id("berlin")
        masked_state = environment.reset(Query(alice, lives_in, berlin))
        masked = cache.actions(masked_state)
        assert (lives_in, berlin) not in masked
        assert len(cache.actions_cache) == 0

        serving_state = environment.reset(Query(alice, lives_in, -1))
        unmasked = cache.actions(serving_state)
        assert (lives_in, berlin) in unmasked
        assert len(cache.actions_cache) == 1
