"""ServerStats: window rollover, error accounting, queue depth, stage breakdown."""

from __future__ import annotations

import time

import pytest

from repro.serve.batcher import DynamicBatcher
from repro.serve.server import _LATENCY_WINDOW, STAGES, ReasoningServer, ServerStats


class TestLatencyWindowRollover:
    def test_window_drops_oldest_at_boundary(self):
        stats = ServerStats()
        overflow = 10
        for i in range(_LATENCY_WINDOW + overflow):
            stats.record_request(float(i))
        # Counters are cumulative; the percentile window is sliding.
        assert stats.requests_total == _LATENCY_WINDOW + overflow
        assert len(stats._latencies) == _LATENCY_WINDOW
        # p0 == the oldest surviving sample: the first `overflow` rolled out.
        assert stats.latency_percentile_ms(0.0) == pytest.approx(1000.0 * overflow)
        assert stats.latency_percentile_ms(1.0) == pytest.approx(
            1000.0 * (_LATENCY_WINDOW + overflow - 1)
        )

    def test_stage_windows_roll_independently(self):
        stats = ServerStats()
        for i in range(_LATENCY_WINDOW + 5):
            stats.record_stage_times(float(i), 0.0, 0.0)
        samples = stats.stage_samples()
        assert len(samples["queue_wait"]) == _LATENCY_WINDOW
        assert samples["queue_wait"][0] == 5.0
        # The other stages saw the same number of records, all zero.
        assert len(samples["compute"]) == _LATENCY_WINDOW
        assert stats.stage_percentile_ms("compute", 0.99) == 0.0


class TestErrorAccounting:
    def test_error_rate_counts_only_errors(self):
        stats = ServerStats()
        assert stats.error_rate() == 0.0  # no traffic yet: not a division error
        for i in range(8):
            stats.record_request(0.001, error=(i % 4 == 0))
        assert stats.requests_total == 8 and stats.errors_total == 2
        assert stats.error_rate() == pytest.approx(0.25)
        payload = stats.to_dict()
        assert payload["errors_total"] == 2 and payload["requests_total"] == 8


class TestQueueDepthSnapshot:
    def test_to_dict_reports_passed_depth(self):
        stats = ServerStats()
        assert stats.to_dict(queue_depth=7)["queue_depth"] == 7
        assert stats.to_dict()["queue_depth"] == 0

    def test_depth_tracks_unconsumed_batcher_queue(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_ms=1.0)
        try:
            for payload in range(3):
                batcher.submit(payload)
            stats = ServerStats()
            assert stats.to_dict(queue_depth=batcher.depth)["queue_depth"] == 3
            batcher.next_batch(timeout=0.05)
            assert stats.to_dict(queue_depth=batcher.depth)["queue_depth"] == 0
        finally:
            batcher.close()


class TestStageBreakdown:
    def test_idle_stats_report_zeroed_stages(self):
        payload = ServerStats().to_dict()
        assert set(payload["stages"]) == {f"{stage}_ms" for stage in STAGES}
        for block in payload["stages"].values():
            assert block == {"mean": 0.0, "p50": 0.0, "p99": 0.0}

    def test_recorded_stages_surface_in_to_dict(self):
        stats = ServerStats()
        stats.record_stage_times(0.010, 0.002, 0.030)
        stats.record_stage_times(0.020, 0.004, 0.050)
        payload = stats.to_dict()["stages"]
        assert payload["queue_wait_ms"]["mean"] == pytest.approx(15.0)
        assert payload["queue_wait_ms"]["p50"] == pytest.approx(15.0)
        assert payload["batch_wait_ms"]["p99"] == pytest.approx(3.98)
        assert payload["compute_ms"]["mean"] == pytest.approx(40.0)
        assert stats.stage_percentile_ms("compute", 0.5) == pytest.approx(40.0)

    def test_stage_samples_returns_snapshot_copy(self):
        stats = ServerStats()
        stats.record_stage_times(0.001, 0.001, 0.001)
        snapshot = stats.stage_samples()
        snapshot["compute"].append(999.0)
        assert stats.stage_samples()["compute"] == [0.001]


class _SleepyReasoner:
    """A stub model with measurable compute time, for end-to-end stage tests."""

    name = "sleepy"

    def __init__(self, delay_s: float = 0.004):
        self.delay_s = delay_s

    def query(self, head, relation, k: int = 10):
        time.sleep(self.delay_s)
        return []

    def query_batch(self, queries, k: int = 10):
        time.sleep(self.delay_s)
        return [[] for _ in queries]


class TestEndToEndStageTiming:
    def test_served_requests_populate_every_stage(self):
        server = ReasoningServer(
            _SleepyReasoner(), max_batch_size=4, max_wait_ms=2.0, num_workers=1
        ).start()
        try:
            futures = [server.submit(0, 0, k=1) for _ in range(12)]
            for future in futures:
                future.result(timeout=10.0)
        finally:
            server.close()
        stats = server.pool.stats_for("sleepy")
        samples = stats.stage_samples()
        assert all(len(samples[stage]) == 12 for stage in STAGES)
        # Compute dominates for a sleeping model, and every stage is sane.
        assert stats.stage_percentile_ms("compute", 0.5) >= 3.0
        assert all(v >= 0.0 for stage in STAGES for v in samples[stage])
        # The stage split roughly reassembles the end-to-end latency.
        total_p50 = sum(stats.stage_percentile_ms(stage, 0.5) for stage in STAGES)
        assert total_p50 <= stats.latency_percentile_ms(0.5) * 3 + 5.0
