"""DynamicBatcher unit tests: flush policy, fallback, and error isolation.

These run against the batcher alone (payloads are plain ints/strings, the
"model" is a lambda), so they pin the coalescing semantics without training
anything.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import BatcherClosed, DynamicBatcher
from repro.serve.batcher import execute_batch


class TestFlushPolicy:
    def test_burst_coalesces_into_full_batches(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_ms=50)
        futures = [batcher.submit(i) for i in range(10)]
        sizes = [len(batcher.next_batch()) for _ in range(3)]
        assert sizes == [4, 4, 2]
        assert batcher.depth == 0
        assert all(not f.done() for f in futures)  # workers resolve futures, not the queue

    def test_max_wait_flushes_partial_batch(self):
        batcher = DynamicBatcher(max_batch_size=16, max_wait_ms=20)
        batcher.submit("only")
        start = time.monotonic()
        batch = batcher.next_batch()
        elapsed = time.monotonic() - start
        assert [r.payload for r in batch] == ["only"]
        assert elapsed < 5.0, "a partial batch must flush at max_wait_ms, not hang"

    def test_single_request_fallback_skips_the_wait(self):
        # max_batch_size=1 is per-request dispatch: no coalescing delay at all.
        batcher = DynamicBatcher(max_batch_size=1, max_wait_ms=10_000)
        batcher.submit("now")
        start = time.monotonic()
        batch = batcher.next_batch()
        elapsed = time.monotonic() - start
        assert [r.payload for r in batch] == ["now"]
        assert elapsed < 1.0

    def test_late_arrivals_join_an_open_batch(self):
        batcher = DynamicBatcher(max_batch_size=2, max_wait_ms=10_000)
        collected = []

        def consume():
            collected.append(batcher.next_batch())

        worker = threading.Thread(target=consume)
        batcher.submit("first")
        worker.start()
        # The worker is now holding the batch open for a second request.
        batcher.submit("second")
        worker.join(timeout=5)
        assert not worker.is_alive()
        assert [r.payload for r in collected[0]] == ["first", "second"]

    def test_next_batch_timeout_on_idle_queue(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_ms=5)
        assert batcher.next_batch(timeout=0.05) is None

    def test_concurrent_workers_never_receive_empty_batches(self):
        # Two workers racing over one request: whoever loses the pop must go
        # back to waiting (and see the close), never return an empty batch.
        batcher = DynamicBatcher(max_batch_size=4, max_wait_ms=20)
        results = []

        def worker():
            results.append(batcher.next_batch())

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        batcher.submit("one")
        time.sleep(0.1)
        batcher.close()
        for thread in threads:
            thread.join(timeout=5)
        assert [] not in results, "a worker must never receive an empty batch"
        assert None in results, "the losing worker sees the close"
        winners = [batch for batch in results if batch]
        assert len(winners) == 1
        assert [r.payload for r in winners[0]] == ["one"]


class TestLifecycle:
    def test_submit_after_close_raises(self):
        batcher = DynamicBatcher()
        batcher.close()
        with pytest.raises(BatcherClosed):
            batcher.submit("late")

    def test_close_drains_queued_requests_then_returns_none(self):
        batcher = DynamicBatcher(max_batch_size=8, max_wait_ms=10_000)
        batcher.submit("queued")
        batcher.close()
        assert [r.payload for r in batcher.next_batch()] == ["queued"]
        assert batcher.next_batch() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            DynamicBatcher(max_wait_ms=-1)

    def test_close_flushes_a_batch_a_worker_is_holding_open(self):
        # A worker coalescing a partial batch must release it as soon as the
        # batcher closes, not sleep out the remaining max_wait_ms budget.
        batcher = DynamicBatcher(max_batch_size=8, max_wait_ms=60_000)
        collected = []

        def consume():
            collected.append(batcher.next_batch())

        worker = threading.Thread(target=consume)
        batcher.submit("pending")
        worker.start()
        time.sleep(0.05)  # let the worker enter the coalescing wait
        start = time.monotonic()
        batcher.close()
        worker.join(timeout=5)
        assert not worker.is_alive()
        assert time.monotonic() - start < 5.0
        assert [r.payload for r in collected[0]] == ["pending"]

    def test_close_with_many_pending_drains_in_order_across_batches(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_ms=10_000)
        futures = [batcher.submit(i) for i in range(10)]
        batcher.close()
        drained = []
        while (batch := batcher.next_batch()) is not None:
            drained.append([r.payload for r in batch])
        assert drained == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert batcher.depth == 0
        # The queue hands requests to workers; the futures are still theirs
        # to resolve — closing must not touch them.
        assert all(not f.done() for f in futures)

    def test_shutdown_with_pending_requests_resolves_every_future(self):
        # End-to-end worker-pool shape: requests queued at close() time must
        # still be answered before the workers exit.
        batcher = DynamicBatcher(max_batch_size=3, max_wait_ms=5)

        def worker():
            while (batch := batcher.next_batch()) is not None:
                time.sleep(0.01)  # keep a backlog queued at close() time
                execute_batch(
                    batch,
                    lambda payloads: [p * 2 for p in payloads],
                    lambda payload: payload * 2,
                )

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        futures = {i: batcher.submit(i) for i in range(20)}
        batcher.close()
        for thread in threads:
            thread.join(timeout=10)
        assert all(not thread.is_alive() for thread in threads)
        assert {i: f.result(timeout=1) for i, f in futures.items()} == {
            i: i * 2 for i in range(20)
        }
        with pytest.raises(BatcherClosed):
            batcher.submit("too late")


class TestErrorIsolation:
    def _drain(self, batcher):
        return batcher.next_batch()

    def test_batch_success_resolves_every_future(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_ms=5)
        futures = [batcher.submit(i) for i in range(4)]
        execute_batch(
            self._drain(batcher),
            lambda payloads: [p * 10 for p in payloads],
            lambda payload: payload * 10,
        )
        assert [f.result(timeout=1) for f in futures] == [0, 10, 20, 30]

    def test_one_bad_request_never_fails_its_batchmates(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_ms=5)
        futures = {i: batcher.submit(i) for i in (1, 2, 3)}

        def answer(payload):
            if payload == 2:
                raise KeyError("unknown entity")
            return payload * 10

        execute_batch(
            self._drain(batcher),
            lambda payloads: [answer(p) for p in payloads],  # poisons the batch
            answer,
        )
        assert futures[1].result(timeout=1) == 10
        assert futures[3].result(timeout=1) == 30
        with pytest.raises(KeyError, match="unknown entity"):
            futures[2].result(timeout=1)

    def test_wrong_result_count_triggers_per_request_fallback(self):
        batcher = DynamicBatcher(max_batch_size=3, max_wait_ms=5)
        futures = [batcher.submit(i) for i in range(3)]
        execute_batch(
            self._drain(batcher),
            lambda payloads: payloads[:-1],  # silently dropped a result
            lambda payload: payload,
        )
        assert [f.result(timeout=1) for f in futures] == [0, 1, 2]

    def test_cancelled_requests_are_skipped(self):
        batcher = DynamicBatcher(max_batch_size=2, max_wait_ms=5)
        keep = batcher.submit("keep")
        dropped = batcher.submit("dropped")
        assert dropped.cancel()
        execute_batch(
            self._drain(batcher),
            lambda payloads: [p.upper() for p in payloads],
            lambda payload: payload.upper(),
        )
        assert keep.result(timeout=1) == "KEEP"
        assert dropped.cancelled()
