"""Multi-tenant serving tests: routing, hot swap, canary splits.

These pin the PR-5 acceptance criteria: one :class:`ReasoningServer` serves
two registered models concurrently over HTTP with per-model stats; a
``promote()`` + ``reload()`` swaps the ``prod`` alias live without dropping
in-flight requests; and canary routing honors its fraction reproducibly
under a fixed seed.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.baselines.registry import fit_baseline
from repro.serve import ModelRegistry, Reasoner, ReasoningServer


@pytest.fixture(scope="module")
def mmkgr_reasoner(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    tiny_preset = request.getfixturevalue("tiny_preset")
    return Reasoner(preset=tiny_preset, rng=0).fit(tiny_dataset)


@pytest.fixture(scope="module")
def mtrl_reasoner(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    tiny_preset = request.getfixturevalue("tiny_preset")
    return fit_baseline("MTRL", tiny_dataset, preset=tiny_preset, rng=0)


@pytest.fixture(scope="module")
def test_queries(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    return [(t.head, t.relation) for t in tiny_dataset.splits.test[:8]]


@pytest.fixture(scope="module")
def registry(mmkgr_reasoner, tmp_path_factory):
    """Two published MMKGR versions; prod starts at v1."""
    registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
    registry.publish(mmkgr_reasoner, name="mmkgr", aliases=("prod",))
    registry.publish(mmkgr_reasoner, name="mmkgr")
    return registry


def _ranking(predictions):
    return [(p.entity, round(p.score, 10)) for p in predictions]


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


class TestMultiModelHTTP:
    @pytest.fixture()
    def served(self, mmkgr_reasoner, mtrl_reasoner):
        server = ReasoningServer(mmkgr_reasoner, max_batch_size=4, max_wait_ms=10)
        server.add_model(reasoner=mtrl_reasoner)  # hosted as "MTRL"
        httpd = server.http_server("127.0.0.1", 0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            yield base, server
        finally:
            httpd.shutdown()
            httpd.server_close()
            server.close()
            thread.join(timeout=5)

    def test_two_models_served_concurrently_with_per_model_stats(
        self, served, mmkgr_reasoner, mtrl_reasoner, test_queries
    ):
        base, server = served
        answers = {"MMKGR": [], "MTRL": []}
        errors = []

        def client(model, share):
            try:
                for head, relation in share:
                    status, payload = _post(
                        f"{base}/v1/models/{model}/query",
                        {"head": head, "relation": relation, "k": 3},
                    )
                    assert status == 200 and payload["model"] == model
                    answers[model].append([p["entity"] for p in payload["predictions"]])
            except Exception as error:  # pragma: no cover - surfaced by the assert
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(model, test_queries))
            for model in ("MMKGR", "MTRL")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        for model, reasoner in (("MMKGR", mmkgr_reasoner), ("MTRL", mtrl_reasoner)):
            direct = reasoner.query_batch(test_queries, k=3)
            assert answers[model] == [[p.entity for p in one] for one in direct]
        # Per-model stats: each model's counters saw exactly its own traffic.
        for model in ("MMKGR", "MTRL"):
            stats = _get(f"{base}/v1/models/{model}/stats")
            assert stats["model"] == model
            assert stats["requests_total"] == len(test_queries)

    def test_models_listing_and_default_alias_endpoints(self, served, test_queries):
        base, server = served
        listing = _get(f"{base}/v1/models")
        assert listing["default_model"] == "MMKGR"
        assert [m["name"] for m in listing["models"]] == ["MMKGR", "MTRL"]
        # Legacy endpoints still address the default model.
        head, relation = test_queries[0]
        status, payload = _post(f"{base}/query", {"head": head, "relation": relation})
        assert status == 200 and payload["model"] == "MMKGR"
        assert _get(f"{base}/stats")["model"] == "MMKGR"

    def test_legacy_query_honors_a_body_model_field(self, served, test_queries):
        # The stdio protocol routes on a "model" field; the same payload over
        # HTTP must pick the same model, not silently fall back to the
        # default one.
        base, _ = served
        head, relation = test_queries[0]
        status, payload = _post(
            f"{base}/query", {"head": head, "relation": relation, "model": "MTRL"}
        )
        assert status == 200 and payload["model"] == "MTRL"
        # A body model conflicting with the URL model is a client error.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                f"{base}/v1/models/MMKGR/query",
                {"head": head, "relation": relation, "model": "MTRL"},
            )
        assert excinfo.value.code == 400
        assert "conflicts" in json.loads(excinfo.value.read())["error"]
        # Agreeing URL + body models are fine.
        status, payload = _post(
            f"{base}/v1/models/MTRL/query",
            {"head": head, "relation": relation, "model": "MTRL"},
        )
        assert status == 200 and payload["model"] == "MTRL"

    def test_unknown_model_is_a_404_listing_the_hosted_ones(self, served, test_queries):
        base, _ = served
        head, relation = test_queries[0]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{base}/v1/models/nope/query", {"head": head, "relation": relation})
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert body["models"] == ["MMKGR", "MTRL"]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base}/v1/models/nope/stats")
        assert excinfo.value.code == 404


class TestHotSwap:
    def test_promote_and_reload_swap_prod_without_dropping_requests(
        self, registry, test_queries
    ):
        server = ReasoningServer(
            registry=registry,
            default_model="mmkgr@prod",
            max_batch_size=4,
            max_wait_ms=10,
        )
        assert server.pool.entry("mmkgr").version == 1
        with server:
            # A burst is in flight when the alias moves and the model reloads.
            in_flight = [
                server.submit(head, relation, k=3)
                for head, relation in test_queries * 4
            ]
            registry.promote("mmkgr", "prod", 2)
            swapped = server.reload("mmkgr")
            after = [
                server.submit(head, relation, k=3) for head, relation in test_queries
            ]
            results = [f.result(timeout=60) for f in in_flight + after]
        assert swapped.version == 2
        assert server.pool.entry("mmkgr").version == 2
        assert all(results), "every pre- and post-swap request must be answered"
        # The shared stats registry survives the swap: one counter block saw
        # both the drained and the post-swap traffic.
        assert server.stats.requests_total == len(test_queries) * 5
        assert server.stats.errors_total == 0

    def test_reload_with_explicit_reasoner(self, mmkgr_reasoner, test_queries):
        server = ReasoningServer(mmkgr_reasoner, max_batch_size=4, max_wait_ms=10)
        with server:
            before = server.query(*test_queries[0], k=3)
            assert server.reload("MMKGR", reasoner=mmkgr_reasoner.replicate()) is None
            after = server.query(*test_queries[0], k=3)
        assert _ranking(before) == _ranking(after)

    def test_reload_of_ad_hoc_model_requires_a_reasoner(self, mmkgr_reasoner):
        server = ReasoningServer(mmkgr_reasoner)
        with pytest.raises(RuntimeError, match="not registry-backed"):
            server.reload("MMKGR")

    def test_submit_that_lost_the_swap_race_retries_on_the_new_entry(
        self, mmkgr_reasoner, test_queries, monkeypatch
    ):
        # Regression: a submit can look up an entry, lose the CPU, and resume
        # after a hot swap closed that entry's batcher. The server must
        # transparently retry on the replacement instead of leaking
        # BatcherClosed to the client.
        server = ReasoningServer(mmkgr_reasoner, max_batch_size=4, max_wait_ms=5)
        with server:
            retired = server.pool.entry("MMKGR")
            server.reload("MMKGR", reasoner=mmkgr_reasoner.replicate())
            real_entry = server.pool.entry
            handed_out = {"stale": 0}

            def stale_once(name):
                if handed_out["stale"] == 0:
                    handed_out["stale"] += 1
                    return retired  # what a racing thread would have seen
                return real_entry(name)

            monkeypatch.setattr(server.pool, "entry", stale_once)
            head, relation = test_queries[0]
            predictions = server.query(head, relation, k=3)
        assert predictions
        assert handed_out["stale"] == 1

    def test_swap_storm_under_concurrent_traffic_drops_nothing(
        self, registry, test_queries
    ):
        server = ReasoningServer(
            registry=registry,
            default_model="mmkgr@prod",
            max_batch_size=4,
            max_wait_ms=2,
        )
        futures, errors = [], []
        swapping = threading.Event()

        def pump():
            # A bounded burst per thread: enough pressure to overlap the
            # swaps below, small enough to drain quickly afterwards.
            try:
                for head, relation in test_queries * 4:
                    futures.append(server.submit(head, relation, k=3))
                    if swapping.is_set():
                        time.sleep(0.001)  # keep submitting *during* the swaps
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        with server:
            swapping.set()
            pumps = [threading.Thread(target=pump) for _ in range(3)]
            for thread in pumps:
                thread.start()
            for version in (2, 1, 2):
                registry.promote("mmkgr", "prod", version)
                server.reload("mmkgr")
            swapping.clear()
            for thread in pumps:
                thread.join(timeout=60)
            results = [f.result(timeout=120) for f in futures]
        assert not errors, errors
        assert len(results) == len(test_queries) * 4 * 3
        assert all(results)
        assert server.stats.errors_total == 0


class TestCanaryRouting:
    FRACTION = 0.3
    REQUESTS = 80

    def _canary_count(self, registry, test_queries, seed):
        registry.promote("mmkgr", "canary", 2)
        server = ReasoningServer(
            registry=registry,
            default_model="mmkgr@prod",
            max_batch_size=8,
            max_wait_ms=5,
            seed=seed,
        )
        canary_key = server.route("mmkgr", self.FRACTION)
        assert canary_key == "mmkgr@canary"
        queries = (test_queries * 10)[: self.REQUESTS]
        with server:
            futures = [server.submit(h, r, k=3) for h, r in queries]
            for future in futures:
                future.result(timeout=60)
            canary = server.stats_dict(model=canary_key)
            prod = server.stats_dict(model="mmkgr")
        assert canary["requests_total"] + prod["requests_total"] == self.REQUESTS
        assert canary["version"] == 2
        return canary["requests_total"]

    def test_fraction_honored_and_reproducible_under_fixed_seed(
        self, registry, test_queries
    ):
        first = self._canary_count(registry, test_queries, seed=123)
        second = self._canary_count(registry, test_queries, seed=123)
        assert first == second, "same seed + same sequence must split identically"
        observed = first / self.REQUESTS
        assert abs(observed - self.FRACTION) < 0.15
        assert 0 < first < self.REQUESTS

    def test_different_seed_changes_the_split(self, registry, test_queries):
        # Not guaranteed in general, but with 80 draws two seeds coinciding
        # exactly would be a (fixed, deterministic) coincidence; these two
        # particular seeds differ.
        assert self._canary_count(
            registry, test_queries, seed=123
        ) != self._canary_count(registry, test_queries, seed=7)

    def test_route_validation_and_removal(self, mmkgr_reasoner, mtrl_reasoner):
        server = ReasoningServer(mmkgr_reasoner)
        with pytest.raises(ValueError, match="within"):
            server.route("MMKGR", 1.5)
        with pytest.raises(ValueError, match="canary to itself"):
            server.route("MMKGR", 0.5, canary="MMKGR")
        with pytest.raises(RuntimeError, match="no registry"):
            server.route("MMKGR", 0.5)  # default canary needs a registry
        server.add_model(reasoner=mtrl_reasoner)
        server.route("MMKGR", 0.5, canary="MTRL")
        assert server.routes()["MMKGR"].canary == "MTRL"
        server.route("MMKGR", 0.0)
        assert server.routes() == {}

    def test_stdio_lines_can_address_models(
        self, mmkgr_reasoner, mtrl_reasoner, test_queries
    ):
        import io

        head, relation = test_queries[0]
        lines = [
            json.dumps({"head": head, "relation": relation, "k": 2}),
            json.dumps({"head": head, "relation": relation, "k": 2, "model": "MTRL"}),
            json.dumps({"head": head, "relation": relation, "model": "nope"}),
        ]
        output = io.StringIO()
        server = ReasoningServer(mmkgr_reasoner, max_batch_size=4, max_wait_ms=5)
        server.add_model(reasoner=mtrl_reasoner)
        with server:
            failures = server.serve_stdio(io.StringIO("\n".join(lines) + "\n"), output)
        records = [json.loads(line) for line in output.getvalue().splitlines()]
        assert failures == 1
        assert len(records) == 3
        routed = [r for r in records if r.get("model") == "MTRL"]
        assert routed and "predictions" in routed[0]
        failed = [r for r in records if "error" in r]
        assert len(failed) == 1 and "nope" in failed[0]["error"]
