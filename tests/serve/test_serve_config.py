"""ServeConfig tests: validation, overrides, and the legacy-kwarg shim.

The unified config is the one surface every entry point (constructor, CLI,
load-test spec) funnels through, so its validation errors and the
deprecation shim's mapping must stay exact.
"""

from __future__ import annotations

import pytest

from repro.serve import BACKENDS, ReasoningServer, ServeConfig


class _StubReasoner:
    """The minimal fit-reasoner shape the server's threads backend needs."""

    name = "stub"

    def query(self, head, relation, k=10):
        return []

    def query_batch(self, queries, k=10):
        return [[] for _ in queries]


class TestValidation:
    def test_defaults_are_valid_and_threads_backed(self):
        config = ServeConfig()
        assert config.backend == "threads"
        assert config.workers == 1

    def test_backends_constant_lists_both_backends(self):
        assert BACKENDS == ("threads", "processes")

    @pytest.mark.parametrize(
        ("field", "value", "match"),
        [
            ("backend", "gevent", "backend must be one of"),
            ("workers", 0, "workers must be >= 1"),
            ("max_batch_size", 0, "max_batch_size must be >= 1"),
            ("max_wait_ms", -1.0, "max_wait_ms must be >= 0"),
            ("default_k", 0, "default_k must be >= 1"),
            ("stats_interval_s", 0.0, "stats_interval_s must be > 0"),
            ("heartbeat_interval_s", 0.0, "heartbeat_interval_s must be > 0"),
            ("request_timeout_s", 0.0, "request_timeout_s must be > 0"),
            ("start_method", "thread", "start_method must be one of"),
        ],
    )
    def test_bad_values_fail_at_construction(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            ServeConfig(**{field: value})

    def test_frozen(self):
        config = ServeConfig()
        with pytest.raises(AttributeError):
            config.workers = 4


class TestWithOverrides:
    def test_overrides_produce_a_validated_copy(self):
        base = ServeConfig()
        derived = base.with_overrides(backend="processes", workers=3)
        assert (derived.backend, derived.workers) == ("processes", 3)
        assert (base.backend, base.workers) == ("threads", 1)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ServeConfig field"):
            ServeConfig().with_overrides(wrokers=2)

    def test_override_values_are_still_validated(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            ServeConfig().with_overrides(workers=0)


class TestLegacyKwargShim:
    def test_legacy_kwargs_warn_and_map_onto_config(self):
        with pytest.warns(DeprecationWarning, match="pass config=ServeConfig"):
            server = ReasoningServer(
                _StubReasoner(),
                max_batch_size=4,
                max_wait_ms=1.5,
                num_workers=2,
                default_k=3,
                seed=42,
            )
        try:
            assert server.config.max_batch_size == 4
            assert server.config.max_wait_ms == 1.5
            assert server.config.workers == 2  # num_workers renamed
            assert server.config.default_k == 3
            assert server.config.seed == 42
            assert server.config.backend == "threads"
        finally:
            server.close()

    def test_config_plus_legacy_kwargs_is_ambiguous(self):
        with pytest.raises(ValueError, match="not both"):
            ReasoningServer(_StubReasoner(), config=ServeConfig(), num_workers=2)

    def test_config_only_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            server = ReasoningServer(
                _StubReasoner(), config=ServeConfig(max_batch_size=4)
            )
        server.close()
        assert server.config.max_batch_size == 4

    def test_config_carries_default_model_and_default_k(self):
        config = ServeConfig(default_k=7)
        server = ReasoningServer(_StubReasoner(), config=config)
        try:
            assert server.default_k == 7
            assert server.default_model == "stub"
        finally:
            server.close()
