"""ModelRegistry tests: publish/resolve/promote, manifests, backcompat.

One tiny MMKGR reasoner is trained per module and published repeatedly; the
registry must hand back versions that answer queries identically to the
original, and its alias file must flip atomically under ``promote``.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.baselines.registry import fit_baseline
from repro.serve import ModelRegistry, ModelVersion, Reasoner, load_reasoner
from repro.serve.reasoner import REASONER_FILE, dataset_fingerprint
from repro.serve.registry import ALIASES_FILE, VERSION_FILE


@pytest.fixture(scope="module")
def fitted_reasoner(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    tiny_preset = request.getfixturevalue("tiny_preset")
    return Reasoner(preset=tiny_preset, rng=0).fit(tiny_dataset)


@pytest.fixture(scope="module")
def test_queries(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    return [(t.head, t.relation) for t in tiny_dataset.splits.test[:6]]


def _ranking(predictions):
    return [(p.entity, round(p.score, 10)) for p in predictions]


class TestPublish:
    def test_versions_are_sequential_and_immutable_directories(
        self, fitted_reasoner, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "registry")
        first = registry.publish(fitted_reasoner, name="mmkgr")
        second = registry.publish(fitted_reasoner, name="mmkgr")
        assert (first.version, second.version) == (1, 2)
        assert first.ref == "mmkgr@1"
        for version in (first, second):
            assert (version.path / VERSION_FILE).exists()
            assert (version.path / REASONER_FILE).exists()

    def test_version_manifest_records_provenance(self, fitted_reasoner, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        version = registry.publish(
            fitted_reasoner, name="mmkgr", metrics={"hits@1": 0.5, "mrr": 0.6}
        )
        manifest = version.manifest
        assert manifest["name"] == "mmkgr"
        assert manifest["version"] == 1
        assert manifest["repro_version"] == repro.__version__
        assert manifest["reasoner_type"] == "agent"
        assert manifest["dataset"]["name"] == "tiny-mkg"
        assert manifest["dataset"]["fingerprint"]
        assert version.metrics == {"hits@1": 0.5, "mrr": 0.6}
        assert "published_at" in manifest

    def test_publish_updates_latest_and_extra_aliases(self, fitted_reasoner, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(fitted_reasoner, name="mmkgr")
        registry.publish(fitted_reasoner, name="mmkgr", aliases=("prod",))
        assert registry.aliases("mmkgr") == {"latest": 2, "prod": 2}

    def test_publish_rejects_bad_names_and_reserved_aliases(
        self, fitted_reasoner, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "registry")
        with pytest.raises(ValueError, match="invalid model name"):
            registry.publish(fitted_reasoner, name="bad@name")
        with pytest.raises(ValueError, match="managed by the registry"):
            registry.publish(fitted_reasoner, name="ok", aliases=("latest",))

    def test_defaults_to_the_reasoner_name(self, fitted_reasoner, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        version = registry.publish(fitted_reasoner)
        assert version.name == fitted_reasoner.name == "MMKGR"

    def test_concurrent_publishers_claim_distinct_versions(
        self, tiny_dataset, tiny_preset, tmp_path
    ):
        # Two publishers racing for the same version number must both land:
        # the loser retries with the next free number instead of failing (or
        # deleting its completed save).
        import threading

        mtrl = fit_baseline("MTRL", tiny_dataset, preset=tiny_preset, rng=0)
        registry = ModelRegistry(tmp_path / "registry")
        published, errors = [], []

        def publish():
            try:
                for _ in range(3):
                    published.append(registry.publish(mtrl, name="mtrl").version)
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        threads = [threading.Thread(target=publish) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert sorted(published) == [1, 2, 3, 4, 5, 6]
        assert registry.resolve("mtrl").version == 6
        for version in range(1, 7):
            assert registry.resolve(f"mtrl@{version}").manifest["version"] == version

    def test_embedding_reasoner_publishes_and_loads(
        self, tiny_dataset, tiny_preset, test_queries, tmp_path
    ):
        mtrl = fit_baseline("MTRL", tiny_dataset, preset=tiny_preset, rng=0)
        registry = ModelRegistry(tmp_path / "registry")
        version = registry.publish(mtrl, name="mtrl")
        assert version.manifest["reasoner_type"] == "embedding"
        assert version.manifest["dataset"]["fingerprint"]
        restored = version.load()
        assert list(map(_ranking, restored.query_batch(test_queries, k=3))) == list(
            map(_ranking, mtrl.query_batch(test_queries, k=3))
        )


class TestResolve:
    @pytest.fixture()
    def registry(self, fitted_reasoner, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(fitted_reasoner, name="mmkgr")
        registry.publish(fitted_reasoner, name="mmkgr", aliases=("prod",))
        return registry

    def test_bare_name_resolves_latest(self, registry):
        assert registry.resolve("mmkgr").version == 2

    def test_version_and_alias_selectors(self, registry):
        assert registry.resolve("mmkgr@1").version == 1
        assert registry.resolve("mmkgr@prod").version == 2
        assert registry.resolve("mmkgr@latest").version == 2

    def test_unknown_lookups_raise_keyerror(self, registry):
        with pytest.raises(KeyError, match="no model named"):
            registry.resolve("nope")
        with pytest.raises(KeyError, match="no alias"):
            registry.resolve("mmkgr@staging")
        with pytest.raises(KeyError, match="no version 9"):
            registry.resolve("mmkgr@9")

    def test_resolved_version_loads_identical_rankings(
        self, registry, fitted_reasoner, test_queries
    ):
        restored = registry.load("mmkgr@prod")
        assert list(map(_ranking, restored.query_batch(test_queries, k=5))) == list(
            map(_ranking, fitted_reasoner.query_batch(test_queries, k=5))
        )

    def test_resolve_returns_model_version(self, registry):
        resolved = registry.resolve("mmkgr@1")
        assert isinstance(resolved, ModelVersion)
        assert resolved.path.is_dir()


class TestPromote:
    @pytest.fixture()
    def registry(self, fitted_reasoner, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(fitted_reasoner, name="mmkgr")
        registry.publish(fitted_reasoner, name="mmkgr")
        return registry

    def test_promote_moves_the_alias(self, registry):
        registry.promote("mmkgr", "prod", 1)
        assert registry.aliases("mmkgr")["prod"] == 1
        registry.promote("mmkgr", "prod", 2)
        assert registry.aliases("mmkgr")["prod"] == 2

    def test_promote_defaults_to_latest_and_copies_aliases(self, registry):
        registry.promote("mmkgr", "canary")
        assert registry.aliases("mmkgr")["canary"] == 2
        registry.promote("mmkgr", "prod", "canary")
        assert registry.aliases("mmkgr")["prod"] == 2

    def test_promote_rejects_reserved_and_numeric_aliases(self, registry):
        with pytest.raises(ValueError, match="managed by the registry"):
            registry.promote("mmkgr", "latest", 1)
        with pytest.raises(ValueError, match="shadow a version"):
            registry.promote("mmkgr", "3", 1)

    def test_promote_to_unknown_version_raises(self, registry):
        with pytest.raises(KeyError):
            registry.promote("mmkgr", "prod", 9)

    def test_alias_file_never_holds_partial_state(self, registry):
        # promote() writes a unique sibling temp file and os.replace()s it
        # in, so the visible file is always complete JSON and no staging
        # files leak.
        registry.promote("mmkgr", "prod", 1)
        path = registry.root / "mmkgr" / ALIASES_FILE
        assert json.loads(path.read_text()) == {"latest": 2, "prod": 1}
        assert not list(path.parent.glob(f"{ALIASES_FILE}.*"))

    def test_concurrent_promotes_neither_crash_nor_strand_temp_files(self, registry):
        import threading

        errors = []

        def promote(alias, version):
            try:
                for _ in range(10):
                    registry.promote("mmkgr", alias, version)
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        threads = [
            threading.Thread(target=promote, args=("prod", 1)),
            threading.Thread(target=promote, args=("canary", 2)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        # Whole-file replacement means the surviving map is valid JSON with
        # plausible values even when one writer's update lost the race.
        aliases = registry.aliases("mmkgr")
        assert aliases.get("prod", 1) == 1
        assert aliases.get("canary", 2) == 2
        assert not list((registry.root / "mmkgr").glob(f"{ALIASES_FILE}.*"))


class TestListing:
    def test_list_models_summarises_versions_and_aliases(
        self, fitted_reasoner, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "registry")
        assert registry.list_models() == []
        registry.publish(fitted_reasoner, name="alpha")
        registry.publish(fitted_reasoner, name="beta", aliases=("prod",))
        registry.publish(fitted_reasoner, name="beta")
        listing = registry.list_models()
        assert [m["name"] for m in listing] == ["alpha", "beta"]
        beta = listing[1]
        assert beta["versions"] == [1, 2]
        assert beta["latest"] == 2
        assert beta["aliases"] == {"latest": 2, "prod": 1}

    def test_describe_includes_pointing_aliases(self, fitted_reasoner, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(fitted_reasoner, name="mmkgr", aliases=("prod",))
        description = registry.describe("mmkgr@prod")
        assert description["version"] == 1
        assert description["aliases"] == ["latest", "prod"]


class TestPipelinePublish:
    def test_trained_pipeline_publishes_directly(
        self, fitted_reasoner, test_queries, tmp_path
    ):
        version = fitted_reasoner.pipeline.publish(
            tmp_path / "registry", name="from-pipeline", metrics={"mrr": 0.4}
        )
        assert version.ref == "from-pipeline@1"
        assert version.metrics == {"mrr": 0.4}
        restored = version.load()
        assert list(map(_ranking, restored.query_batch(test_queries, k=3))) == list(
            map(_ranking, fitted_reasoner.query_batch(test_queries, k=3))
        )

    def test_untrained_pipeline_refuses_to_publish(
        self, tiny_dataset, tiny_preset, tmp_path
    ):
        from repro.core.trainer import MMKGRPipeline

        with pytest.raises(RuntimeError):
            MMKGRPipeline(tiny_dataset, preset=tiny_preset).publish(tmp_path / "r")


class TestSaveManifestProvenance:
    """Satellite: the enriched reasoner.json and PR-1 backward compatibility."""

    def test_saved_manifest_records_version_dataset_and_metrics(
        self, fitted_reasoner, tmp_path
    ):
        directory = fitted_reasoner.save(tmp_path / "save", metrics={"hits@1": 0.25})
        manifest = json.loads((directory / REASONER_FILE).read_text())
        assert manifest["repro_version"] == repro.__version__
        assert manifest["dataset"]["name"] == "tiny-mkg"
        assert manifest["dataset"]["fingerprint"] == dataset_fingerprint(
            fitted_reasoner.pipeline.dataset.config
        )
        assert manifest["metrics"] == {"hits@1": 0.25}

    def test_metrics_are_optional(self, fitted_reasoner, tmp_path):
        directory = fitted_reasoner.save(tmp_path / "save")
        manifest = json.loads((directory / REASONER_FILE).read_text())
        assert "metrics" not in manifest

    def test_pr1_manifest_still_loads_with_identical_rankings(
        self, fitted_reasoner, test_queries, tmp_path
    ):
        # A PR-1 era save carries none of the provenance keys; loading it
        # must keep working (and ranking identically) forever.
        directory = fitted_reasoner.save(tmp_path / "old-format")
        manifest = json.loads((directory / REASONER_FILE).read_text())
        pr1_keys = (
            "format_version",
            "reasoner_type",
            "name",
            "beam_width",
            "cache_size",
            "agent_class",
            "environment_class",
            "prune_to",
        )
        (directory / REASONER_FILE).write_text(
            json.dumps({key: manifest[key] for key in pr1_keys}, indent=2)
        )
        restored = load_reasoner(directory)
        assert list(map(_ranking, restored.query_batch(test_queries, k=5))) == list(
            map(_ranking, fitted_reasoner.query_batch(test_queries, k=5))
        )

    def test_dataset_fingerprint_is_stable_and_discriminating(self, tiny_dataset):
        config = tiny_dataset.config
        assert dataset_fingerprint(config) == dataset_fingerprint(tiny_dataset)
        assert dataset_fingerprint(config) != dataset_fingerprint(
            tiny_dataset.graph
        ), "config and graph digests hash different material"
        assert dataset_fingerprint(None) is None
        assert len(dataset_fingerprint(config)) == 16
