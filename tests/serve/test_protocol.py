"""Tests for the serving protocol primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.protocol import (
    Prediction,
    QuerySpec,
    ReasonerProtocol,
    predictions_from_scores,
    resolve_query,
)
from repro.serve.reasoner import EmbeddingReasoner, Reasoner


class TestResolveQuery:
    def test_names_resolve_to_ids(self, tiny_graph):
        spec = resolve_query(tiny_graph, "alice", "works_for")
        assert spec == QuerySpec(
            tiny_graph.entity_id("alice"), tiny_graph.relation_id("works_for")
        )

    def test_ids_pass_through(self, tiny_graph):
        assert resolve_query(tiny_graph, 0, 1) == QuerySpec(0, 1)

    def test_out_of_range_entity_rejected(self, tiny_graph):
        with pytest.raises(IndexError):
            resolve_query(tiny_graph, 10_000, 0)

    def test_unknown_name_rejected(self, tiny_graph):
        with pytest.raises(KeyError):
            resolve_query(tiny_graph, "nobody", "works_for")


class TestPrediction:
    def test_render_path(self):
        prediction = Prediction(
            entity=3,
            entity_name="berlin",
            score=-0.5,
            path=((0, 1), (2, 3)),
            path_names=("works_for", "acme", "located_in", "berlin"),
        )
        assert prediction.hops == 2
        assert prediction.render_path() == "works_for -> acme -> located_in -> berlin"

    def test_pathless_prediction_renders_entity(self):
        prediction = Prediction(entity=3, entity_name="berlin", score=1.0)
        assert prediction.hops == 0
        assert prediction.render_path() == "berlin"

    def test_to_dict_round_trips_ids(self):
        prediction = Prediction(entity=3, entity_name="berlin", score=1.0, path=((0, 3),))
        payload = prediction.to_dict()
        assert payload["entity"] == 3 and payload["path"] == [(0, 3)]


class TestPredictionsFromScores:
    def test_top_k_sorted_descending(self, tiny_graph):
        scores = np.zeros(tiny_graph.num_entities)
        scores[2] = 3.0
        scores[5] = 7.0
        predictions = predictions_from_scores(tiny_graph, scores, k=2)
        assert [p.entity for p in predictions] == [5, 2]
        assert predictions[0].entity_name == tiny_graph.entities.symbol(5)

    def test_excluded_entities_are_dropped(self, tiny_graph):
        scores = np.arange(float(tiny_graph.num_entities))
        top = predictions_from_scores(
            tiny_graph, scores, k=2, exclude=[tiny_graph.num_entities - 1]
        )
        assert [p.entity for p in top] == [
            tiny_graph.num_entities - 2,
            tiny_graph.num_entities - 3,
        ]


class TestProtocolConformance:
    def test_reasoner_classes_satisfy_protocol(self):
        assert isinstance(Reasoner(), ReasonerProtocol)
        assert isinstance(EmbeddingReasoner(), ReasonerProtocol)
