"""ReasoningServer tests: coalescing, error isolation, stats, both front ends.

One tiny MMKGR reasoner is trained per module; every test drives it through
the serving daemon and cross-checks against direct ``query``/``query_batch``
calls, which the serving layer must reproduce exactly (same engine, same
caches).
"""

from __future__ import annotations

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import Reasoner, ReasoningServer, ServerStats


@pytest.fixture(scope="module")
def fitted_reasoner(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    tiny_preset = request.getfixturevalue("tiny_preset")
    return Reasoner(preset=tiny_preset, rng=0).fit(tiny_dataset)


@pytest.fixture(scope="module")
def test_queries(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    return [(t.head, t.relation) for t in tiny_dataset.splits.test[:8]]


def _ranking(predictions):
    return [(p.entity, round(p.score, 10)) for p in predictions]


class TestSubmit:
    def test_served_results_match_direct_queries(self, fitted_reasoner, test_queries):
        direct = fitted_reasoner.query_batch(test_queries, k=5)
        with ReasoningServer(fitted_reasoner, max_batch_size=8, max_wait_ms=20) as server:
            futures = [server.submit(h, r, k=5) for h, r in test_queries]
            served = [f.result(timeout=30) for f in futures]
        for direct_one, served_one in zip(direct, served):
            assert _ranking(direct_one) == _ranking(served_one)

    def test_burst_traffic_forms_micro_batches(self, fitted_reasoner, test_queries):
        with ReasoningServer(fitted_reasoner, max_batch_size=8, max_wait_ms=100) as server:
            futures = [server.submit(h, r, k=3) for h, r in test_queries * 2]
            for future in futures:
                future.result(timeout=30)
            stats = server.stats_dict()
        assert stats["requests_total"] == len(test_queries) * 2
        assert stats["batches_total"] < stats["requests_total"], (
            "a burst of concurrent queries must coalesce into micro-batches"
        )
        assert max(int(size) for size in stats["batch_size_histogram"]) > 1

    def test_error_isolation_across_batchmates(self, fitted_reasoner, test_queries):
        head, relation = test_queries[0]
        with ReasoningServer(fitted_reasoner, max_batch_size=4, max_wait_ms=50) as server:
            good = server.submit(head, relation, k=3)
            bad = server.submit("no-such-entity", relation, k=3)
            also_good = server.submit(head, relation, k=3)
            assert good.result(timeout=30)
            assert also_good.result(timeout=30)
            with pytest.raises(KeyError, match="no-such-entity"):
                bad.result(timeout=30)
        assert server.stats.errors_total == 1

    def test_mixed_k_requests_are_grouped(self, fitted_reasoner, test_queries):
        head, relation = test_queries[0]
        with ReasoningServer(fitted_reasoner, max_batch_size=8, max_wait_ms=50) as server:
            three = server.submit(head, relation, k=3).result(timeout=30)
            five = server.submit(head, relation, k=5).result(timeout=30)
        assert len(three) <= 3
        assert len(five) <= 5
        assert _ranking(three) == _ranking(five)[: len(three)]

    def test_worker_pool_replicas_share_caches(self, fitted_reasoner, test_queries):
        with ReasoningServer(
            fitted_reasoner, max_batch_size=4, max_wait_ms=10, num_workers=3
        ) as server:
            futures = [server.submit(h, r, k=3) for h, r in test_queries * 4]
            results = [f.result(timeout=30) for f in futures]
        assert all(results)
        stats = server.stats_dict()
        # Replicas share one action-space cache, so repeated traffic hits it.
        assert stats["cache"]["actions_hits"] > 0

    def test_submit_before_start_raises(self, fitted_reasoner):
        server = ReasoningServer(fitted_reasoner)
        with pytest.raises(RuntimeError, match="not running"):
            server.submit(0, 0)


class TestStats:
    def test_latency_percentiles_and_histogram(self):
        stats = ServerStats()
        for latency_ms in range(1, 101):
            stats.record_request(latency_ms / 1000.0)
        stats.record_batch(4)
        stats.record_batch(4)
        stats.record_batch(2)
        payload = stats.to_dict(queue_depth=7)
        assert payload["requests_total"] == 100
        assert payload["queue_depth"] == 7
        assert payload["batch_size_histogram"] == {"2": 1, "4": 2}
        assert payload["mean_batch_size"] == pytest.approx(10 / 3)
        assert 45 <= payload["latency_p50_ms"] <= 55
        assert 95 <= payload["latency_p99_ms"] <= 100

    def test_empty_stats_are_all_zero(self):
        payload = ServerStats().to_dict()
        assert payload["latency_p50_ms"] == 0.0
        assert payload["mean_batch_size"] == 0.0


class TestPercentile:
    """Regression tests for the linear-interpolation percentile.

    The previous nearest-rank implementation used ``int(round(...))``, whose
    banker's rounding made small-window p50/p99 jump between neighbouring
    samples (round-half-to-even: a 2-sample window reported p50 as the lower
    sample, a 4-sample window as the upper-middle one).
    """

    def test_single_sample_window_returns_the_sample(self):
        from repro.serve.server import _percentile

        for fraction in (0.0, 0.5, 0.99, 1.0):
            assert _percentile([0.042], fraction) == 0.042

    def test_two_sample_window_interpolates(self):
        from repro.serve.server import _percentile

        sample = [0.010, 0.020]
        assert _percentile(sample, 0.50) == pytest.approx(0.015)
        assert _percentile(sample, 0.99) == pytest.approx(0.0199)
        assert _percentile(sample, 0.0) == 0.010
        assert _percentile(sample, 1.0) == 0.020

    def test_hundred_sample_window_matches_numpy(self):
        import numpy as np

        from repro.serve.server import _percentile

        sample = [float(value) for value in range(1, 101)]
        for fraction in (0.50, 0.90, 0.99):
            assert _percentile(sample, fraction) == pytest.approx(
                float(np.percentile(sample, 100 * fraction))
            )
        assert _percentile(sample, 0.50) == pytest.approx(50.5)
        assert _percentile(sample, 0.99) == pytest.approx(99.01)

    def test_order_independence(self):
        from repro.serve.server import _percentile

        shuffled = [0.03, 0.01, 0.05, 0.02, 0.04]
        assert _percentile(shuffled, 0.5) == 0.03


class TestParseQueryObject:
    """Regression tests: booleans must not pass as entity/relation ids or k.

    ``bool`` subclasses ``int``, so ``True`` used to sail through ``int(k)``
    and resolve as entity id 1 — a silently wrong answer instead of a 400.
    """

    def test_boolean_head_and_relation_rejected(self):
        from repro.serve.server import _parse_query_object

        with pytest.raises(ValueError, match="'head' must not be a boolean"):
            _parse_query_object({"head": True, "relation": 1}, default_k=10)
        with pytest.raises(ValueError, match="'relation' must not be a boolean"):
            _parse_query_object({"head": 0, "relation": False}, default_k=10)
        with pytest.raises(ValueError, match="'head' must not be a boolean"):
            _parse_query_object([True, 1], default_k=10)

    def test_boolean_k_rejected(self):
        from repro.serve.server import _parse_query_object

        with pytest.raises(ValueError, match="'k' must not be a boolean"):
            _parse_query_object({"head": 0, "relation": 1, "k": True}, default_k=10)

    def test_integer_payloads_still_parse(self):
        from repro.serve.server import _parse_query_object

        assert _parse_query_object({"head": 0, "relation": 1, "k": 3}, 10) == (0, 1, 3)
        assert _parse_query_object([2, 1], 10) == (2, 1, 10)

    def test_boolean_query_is_a_400_over_http(self, fitted_reasoner, test_queries):
        import threading
        import urllib.request

        server = ReasoningServer(fitted_reasoner, max_batch_size=4, max_wait_ms=10)
        httpd = server.http_server("127.0.0.1", 0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            request = urllib.request.Request(
                f"{base}/query",
                data=json.dumps({"head": True, "relation": 1}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 400
            assert "boolean" in json.loads(excinfo.value.read())["error"]
        finally:
            httpd.shutdown()
            httpd.server_close()
            server.close()
            thread.join(timeout=5)


class TestHTTPFrontEnd:
    @pytest.fixture()
    def http_server(self, fitted_reasoner):
        server = ReasoningServer(fitted_reasoner, max_batch_size=4, max_wait_ms=10)
        httpd = server.http_server("127.0.0.1", 0)  # ephemeral port
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            yield base
        finally:
            httpd.shutdown()
            httpd.server_close()
            server.close()
            thread.join(timeout=5)

    def _post(self, url, payload):
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())

    def test_query_roundtrip(self, http_server, fitted_reasoner, test_queries):
        head, relation = test_queries[0]
        status, payload = self._post(
            f"{http_server}/query", {"head": head, "relation": relation, "k": 3}
        )
        assert status == 200
        direct = fitted_reasoner.query(head, relation, k=3)
        assert [p["entity"] for p in payload["predictions"]] == [p.entity for p in direct]

    def test_pair_payload_accepted(self, http_server, test_queries):
        head, relation = test_queries[0]
        status, payload = self._post(f"{http_server}/query", [head, relation])
        assert status == 200
        assert payload["predictions"]

    def test_bad_query_is_a_400_not_a_crash(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{http_server}/query", {"head": "nope"})
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read())

    def test_unknown_entity_is_a_400(self, http_server, test_queries):
        _, relation = test_queries[0]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{http_server}/query", {"head": "no-such-entity", "relation": relation})
        assert excinfo.value.code == 400

    def test_stats_and_healthz(self, http_server, test_queries):
        head, relation = test_queries[0]
        self._post(f"{http_server}/query", {"head": head, "relation": relation})
        with urllib.request.urlopen(f"{http_server}/stats", timeout=30) as response:
            stats = json.loads(response.read())
        assert stats["requests_total"] >= 1
        assert "latency_p99_ms" in stats and "batch_size_histogram" in stats
        with urllib.request.urlopen(f"{http_server}/healthz", timeout=30) as response:
            payload = json.loads(response.read())
        assert payload["status"] == "ok"
        assert all(model["ready"] for model in payload["models"].values())

    def test_unknown_path_is_a_404(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{http_server}/nope", timeout=30)
        assert excinfo.value.code == 404


class TestHealthz:
    """Regression: /healthz must flip to 503 the moment a drain starts.

    The endpoint used to answer ``{"status": "ok"}`` unconditionally — load
    balancers kept routing to daemons that were already shutting down.
    """

    def test_unstarted_server_is_unready(self, fitted_reasoner):
        server = ReasoningServer(fitted_reasoner, max_batch_size=4, max_wait_ms=10)
        healthy, payload = server.healthz_dict()
        assert healthy is False and payload["status"] == "unready"
        server.close()

    def test_running_server_reports_per_model_readiness(self, fitted_reasoner):
        with ReasoningServer(fitted_reasoner, max_batch_size=4, max_wait_ms=10) as server:
            server.add_model(reasoner=fitted_reasoner.replicate(), name="replica")
            healthy, payload = server.healthz_dict()
            assert healthy is True and payload["status"] == "ok"
            assert set(payload["models"]) == {fitted_reasoner.name, "replica"}
            assert all(model["ready"] for model in payload["models"].values())

    def test_drain_flips_healthz_before_workers_finish(self, fitted_reasoner):
        server = ReasoningServer(fitted_reasoner, max_batch_size=4, max_wait_ms=10).start()
        server.close()
        healthy, payload = server.healthz_dict()
        assert healthy is False
        assert payload["status"] == "draining"
        assert all(model["ready"] is False for model in payload["models"].values())

    def test_http_healthz_returns_503_while_draining(self, fitted_reasoner):
        server = ReasoningServer(fitted_reasoner, max_batch_size=4, max_wait_ms=10)
        httpd = server.http_server("127.0.0.1", 0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            with urllib.request.urlopen(f"{base}/healthz", timeout=30) as response:
                assert response.status == 200
            server.close()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/healthz", timeout=30)
            assert excinfo.value.code == 503
            body = json.loads(excinfo.value.read())
            assert body["status"] == "draining"
            assert body["models"] and all(
                model["ready"] is False for model in body["models"].values()
            )
        finally:
            httpd.shutdown()
            httpd.server_close()
            server.close()
            thread.join(timeout=5)


class TestStdioFrontEnd:
    def test_json_lines_roundtrip(self, fitted_reasoner, test_queries):
        (h0, r0), (h1, r1) = test_queries[0], test_queries[1]
        lines = [
            json.dumps({"head": h0, "relation": r0, "k": 3}),
            json.dumps([h1, r1]),
            "not json at all",
            json.dumps({"head": "no-such-entity", "relation": r0}),
        ]
        output = io.StringIO()
        with ReasoningServer(fitted_reasoner, max_batch_size=4, max_wait_ms=10) as server:
            failures = server.serve_stdio(io.StringIO("\n".join(lines) + "\n"), output)
        records = [json.loads(line) for line in output.getvalue().splitlines()]
        assert failures == 2
        assert len(records) == 4
        ok = [r for r in records if "predictions" in r]
        failed = [r for r in records if "error" in r]
        assert len(ok) == 2 and len(failed) == 2
        assert ok[0]["head"] == h0 and len(ok[0]["predictions"]) <= 3

    def test_mixed_stream_exit_counts_and_output_order(
        self, fitted_reasoner, test_queries
    ):
        """Satellite: valid, malformed, and unknown-entity lines interleaved.

        Contract: answered lines (including unknown-entity failures, which
        fail at execution time) come back in input order relative to each
        other; lines that cannot even be submitted (malformed JSON, boolean
        fields) are answered immediately with an ``"input"`` echo; the return
        value counts every failed line of either kind.
        """
        (h0, r0), (h1, r1), (h2, r2) = test_queries[0], test_queries[1], test_queries[2]
        lines = [
            json.dumps({"head": h0, "relation": r0, "k": 3}),
            "{broken json",
            json.dumps({"head": "no-such-entity", "relation": r0}),
            json.dumps([h1, r1]),
            json.dumps({"head": True, "relation": r0}),  # boolean: submit-time reject
            json.dumps({"head": h2, "relation": r2, "k": 2}),
        ]
        output = io.StringIO()
        with ReasoningServer(fitted_reasoner, max_batch_size=4, max_wait_ms=10) as server:
            failures = server.serve_stdio(io.StringIO("\n".join(lines) + "\n"), output)
        records = [json.loads(line) for line in output.getvalue().splitlines()]
        # 3 failures: broken JSON + unknown entity + boolean head.
        assert failures == 3
        assert len(records) == len(lines)
        # Submitted lines (valid + unknown-entity) are emitted in input order.
        submitted = [r for r in records if "input" not in r]
        assert [r["head"] for r in submitted] == [h0, "no-such-entity", h1, h2]
        assert "error" in submitted[1]
        assert all("predictions" in r for r in (submitted[0], submitted[2], submitted[3]))
        # Unsubmittable lines echo their raw input for correlation.
        unsubmitted = [r for r in records if "input" in r]
        assert [r["input"] for r in unsubmitted] == [lines[1], lines[4]]
        assert all("error" in r for r in unsubmitted)

    def test_all_failures_stream_returns_every_error(self, fitted_reasoner):
        lines = ["nonsense", json.dumps({"head": "ghost", "relation": "ghost-rel"})]
        output = io.StringIO()
        with ReasoningServer(fitted_reasoner, max_batch_size=2, max_wait_ms=5) as server:
            failures = server.serve_stdio(io.StringIO("\n".join(lines) + "\n"), output)
        records = [json.loads(line) for line in output.getvalue().splitlines()]
        assert failures == 2
        assert len(records) == 2
        assert all("error" in r for r in records)
