"""Tests for few-shot relation splits and episode sampling."""

from __future__ import annotations

import pytest

from repro.fewshot.episodes import EpisodeSampler, FewShotTask
from repro.fewshot.splits import build_fewshot_split, relation_frequency_profile
from repro.kg.graph import Triple, is_inverse_relation, NO_OP_RELATION


class TestBuildFewShotSplit:
    def test_partition_covers_relations(self, tiny_dataset):
        split = build_fewshot_split(tiny_dataset, rng=0)
        assert split.fewshot_relations
        assert split.background_relations
        assert not set(split.fewshot_relations) & set(split.background_relations)

    def test_fewshot_relations_are_rarest(self, tiny_dataset):
        split = build_fewshot_split(tiny_dataset, rng=0)
        frequencies = tiny_dataset.graph.relation_frequencies()
        fewshot_max = max(frequencies[r] for r in split.fewshot_relations)
        eligible_background = [
            r
            for r in split.background_relations
            if not is_inverse_relation(tiny_dataset.graph.relations.symbol(r))
            and tiny_dataset.graph.relations.symbol(r) != NO_OP_RELATION
            and frequencies.get(r, 0) >= 4
        ]
        if eligible_background:
            background_max = max(frequencies[r] for r in eligible_background)
            assert fewshot_max <= background_max

    def test_background_triples_exclude_fewshot_relations(self, tiny_dataset):
        split = build_fewshot_split(tiny_dataset, rng=0)
        fewshot = set(split.fewshot_relations)
        assert all(triple.relation not in fewshot for triple in split.background_triples)

    def test_background_graph_walkable(self, tiny_dataset):
        split = build_fewshot_split(tiny_dataset, rng=0)
        graph = split.background_graph()
        assert graph.num_triples == len(split.background_triples)
        assert graph.num_entities == tiny_dataset.graph.num_entities

    def test_explicit_frequency_threshold(self, tiny_dataset):
        frequencies = tiny_dataset.graph.relation_frequencies()
        threshold = sorted(frequencies.values())[len(frequencies) // 2]
        split = build_fewshot_split(
            tiny_dataset, max_relation_frequency=threshold, rng=0
        )
        assert all(frequencies[r] <= threshold for r in split.fewshot_relations)

    def test_summary_counts(self, tiny_dataset):
        split = build_fewshot_split(tiny_dataset, rng=0)
        summary = split.summary()
        assert summary["fewshot_relations"] == float(len(split.fewshot_relations))
        assert summary["background_triples"] == float(len(split.background_triples))

    def test_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            build_fewshot_split(tiny_dataset, fewshot_fraction=0.0)
        with pytest.raises(ValueError):
            build_fewshot_split(tiny_dataset, min_triples_per_relation=1)

    def test_unknown_relation_lookup(self, tiny_dataset):
        split = build_fewshot_split(tiny_dataset, rng=0)
        with pytest.raises(KeyError):
            split.fewshot_triples(-1)


class TestRelationFrequencyProfile:
    def test_profile_sorted_rarest_first(self, tiny_dataset):
        profile = relation_frequency_profile(tiny_dataset.graph)
        counts = [record["count"] for record in profile]
        assert counts == sorted(counts)

    def test_profile_excludes_inverse_and_no_op(self, tiny_dataset):
        profile = relation_frequency_profile(tiny_dataset.graph)
        names = [record["relation"] for record in profile]
        assert all(not is_inverse_relation(name) for name in names)
        assert NO_OP_RELATION not in names


class TestFewShotTask:
    def test_overlap_rejected(self, tiny_graph):
        relation = tiny_graph.relation_id("works_for")
        triple = Triple(tiny_graph.entity_id("alice"), relation, tiny_graph.entity_id("acme"))
        with pytest.raises(ValueError):
            FewShotTask(relation, "works_for", support=[triple], query=[triple])

    def test_wrong_relation_rejected(self, tiny_graph):
        works_for = tiny_graph.relation_id("works_for")
        lives_in = tiny_graph.relation_id("lives_in")
        support = [Triple(tiny_graph.entity_id("alice"), works_for, tiny_graph.entity_id("acme"))]
        query = [Triple(tiny_graph.entity_id("alice"), lives_in, tiny_graph.entity_id("berlin"))]
        with pytest.raises(ValueError):
            FewShotTask(works_for, "works_for", support=support, query=query)


class TestEpisodeSampler:
    @pytest.fixture
    def split(self, tiny_dataset):
        return build_fewshot_split(tiny_dataset, rng=0)

    def test_all_tasks_disjoint_support_query(self, split):
        sampler = EpisodeSampler(split, support_size=2, rng=0)
        tasks = sampler.all_tasks()
        assert tasks
        for task in tasks:
            assert task.support_size == 2
            support_keys = {t.as_tuple() for t in task.support}
            assert all(q.as_tuple() not in support_keys for q in task.query)

    def test_task_for_relation_respects_max_query_size(self, split):
        sampler = EpisodeSampler(split, support_size=2, max_query_size=1, rng=0)
        relation = split.fewshot_relations[0]
        if len(split.fewshot_triples(relation)) > 3:
            task = sampler.task_for_relation(relation)
            assert task.query_size == 1

    def test_sample_task_is_reproducible(self, split):
        task_a = EpisodeSampler(split, support_size=2, rng=42).sample_task()
        task_b = EpisodeSampler(split, support_size=2, rng=42).sample_task()
        assert task_a.relation_id == task_b.relation_id
        assert [t.as_tuple() for t in task_a.support] == [t.as_tuple() for t in task_b.support]

    def test_sample_tasks_count(self, split):
        sampler = EpisodeSampler(split, support_size=2, rng=1)
        assert len(sampler.sample_tasks(3)) == 3
        with pytest.raises(ValueError):
            sampler.sample_tasks(0)

    def test_too_large_support_rejected(self, split):
        relation = split.fewshot_relations[0]
        size = len(split.fewshot_triples(relation))
        sampler = EpisodeSampler(split, support_size=size, rng=0)
        with pytest.raises(ValueError):
            sampler.task_for_relation(relation)

    def test_constructor_validation(self, split):
        with pytest.raises(ValueError):
            EpisodeSampler(split, support_size=0)
        with pytest.raises(ValueError):
            EpisodeSampler(split, support_size=1, max_query_size=0)
