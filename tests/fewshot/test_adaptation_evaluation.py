"""Tests for few-shot adaptation and the end-to-end few-shot protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EvaluationConfig, MMKGRConfig
from repro.core.model import MMKGRAgent
from repro.core.trainer import MMKGRPipeline
from repro.features.extraction import FeatureStore
from repro.fewshot.adaptation import AdaptationConfig, FewShotAdapter
from repro.fewshot.episodes import EpisodeSampler
from repro.fewshot.evaluation import FewShotResult, evaluate_fewshot
from repro.fewshot.splits import build_fewshot_split


@pytest.fixture(scope="module")
def fewshot_setup(request):
    dataset = request.getfixturevalue("tiny_dataset")
    features = FeatureStore(dataset.mkg, structural_dim=8, rng=np.random.default_rng(0))
    config = MMKGRConfig(
        structural_dim=8,
        history_dim=8,
        auxiliary_dim=8,
        attention_dim=8,
        joint_dim=8,
        policy_hidden_dim=16,
        max_steps=3,
        max_actions=16,
    )
    agent = MMKGRAgent(features, config=config, rng=0)
    split = build_fewshot_split(dataset, rng=0)
    sampler = EpisodeSampler(split, support_size=2, max_query_size=4, rng=0)
    tasks = sampler.all_tasks()
    adapter = FewShotAdapter(
        agent,
        base_graph=dataset.train_graph,
        filter_graph=dataset.graph,
        max_steps=3,
        max_actions=16,
        evaluation=EvaluationConfig(beam_width=4, max_queries=4),
        config=AdaptationConfig(imitation_epochs=1, batch_size=4),
        rng=0,
    )
    return dataset, agent, tasks, adapter


class TestAdaptationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptationConfig(imitation_epochs=-1)
        with pytest.raises(ValueError):
            AdaptationConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            AdaptationConfig(batch_size=0)


class TestFewShotAdapter:
    def test_task_environment_contains_support_edges(self, fewshot_setup):
        dataset, _, tasks, adapter = fewshot_setup
        task = tasks[0]
        environment = adapter.task_environment(task)
        for triple in task.support:
            assert environment.graph.contains(triple.head, triple.relation, triple.tail)
        # The base training graph is left untouched and never shrinks.
        assert environment.graph.num_triples >= dataset.train_graph.num_triples

    def test_evaluate_without_adaptation_returns_metrics(self, fewshot_setup):
        _, _, tasks, adapter = fewshot_setup
        metrics = adapter.evaluate_without_adaptation(tasks[0])
        assert set(metrics) == {"mrr", "hits@1", "hits@5", "hits@10"}
        assert 0.0 <= metrics["mrr"] <= 1.0

    def test_adaptation_restores_parameters(self, fewshot_setup):
        _, agent, tasks, adapter = fewshot_setup
        before = {key: value.copy() for key, value in agent.state_dict().items()}
        adapter.adapt_and_evaluate(tasks[0])
        after = agent.state_dict()
        assert set(before) == set(after)
        for key in before:
            np.testing.assert_allclose(before[key], after[key])

    def test_adapt_and_evaluate_returns_metrics(self, fewshot_setup):
        _, _, tasks, adapter = fewshot_setup
        metrics = adapter.adapt_and_evaluate(tasks[0])
        assert 0.0 <= metrics["hits@1"] <= 1.0


class TestFewShotResult:
    def test_overall_and_rows(self):
        result = FewShotResult(support_size=2)
        result.add("rel_a", "support_edges", {"mrr": 0.2, "hits@1": 0.1})
        result.add("rel_a", "adapted", {"mrr": 0.4, "hits@1": 0.3})
        result.add("rel_b", "support_edges", {"mrr": 0.4, "hits@1": 0.2})
        result.add("rel_b", "adapted", {"mrr": 0.6, "hits@1": 0.5})
        assert result.overall("support_edges") == pytest.approx(0.3)
        assert result.overall("adapted") == pytest.approx(0.5)
        assert result.improvement() == pytest.approx(0.2)
        rows = result.as_rows("mrr")
        assert rows[-1][0] == "overall"
        assert len(rows) == 3

    def test_missing_regime_is_nan(self):
        result = FewShotResult()
        result.add("rel_a", "support_edges", {"mrr": 0.2})
        assert np.isnan(result.overall("adapted"))


class TestEvaluateFewshot:
    def test_requires_trained_pipeline(self, tiny_dataset, tiny_preset):
        pipeline = MMKGRPipeline(tiny_dataset, preset=tiny_preset)
        with pytest.raises(RuntimeError):
            evaluate_fewshot(pipeline)

    def test_protocol_on_built_pipeline(self, tiny_dataset, tiny_preset):
        pipeline = MMKGRPipeline(tiny_dataset, preset=tiny_preset)
        pipeline.build()
        result = evaluate_fewshot(
            pipeline,
            support_size=2,
            max_relations=1,
            max_queries_per_relation=3,
            adaptation=AdaptationConfig(imitation_epochs=1, batch_size=4),
            evaluation=EvaluationConfig(beam_width=4, max_queries=3),
            rng=0,
        )
        assert result.relations
        assert set(result.regimes()) == {"support_edges", "adapted"}
        overall = result.overall("adapted")
        assert 0.0 <= overall <= 1.0 or np.isnan(overall)

    def test_protocol_without_adaptation(self, tiny_dataset, tiny_preset):
        pipeline = MMKGRPipeline(tiny_dataset, preset=tiny_preset)
        pipeline.build()
        result = evaluate_fewshot(
            pipeline,
            support_size=2,
            max_relations=1,
            max_queries_per_relation=3,
            include_adaptation=False,
            evaluation=EvaluationConfig(beam_width=4, max_queries=3),
            rng=0,
        )
        assert result.regimes() == ["support_edges"]
