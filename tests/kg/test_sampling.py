"""Tests for negative sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg.sampling import NegativeSampler


class TestCorrupt:
    def test_corrupt_tail_changes_tail(self, tiny_graph):
        sampler = NegativeSampler(tiny_graph, rng=0)
        triple = tiny_graph.triples()[0]
        corrupted = sampler.corrupt(triple, corrupt_tail=True)
        assert corrupted.head == triple.head
        assert corrupted.relation == triple.relation

    def test_corrupt_head_changes_head(self, tiny_graph):
        sampler = NegativeSampler(tiny_graph, rng=0)
        triple = tiny_graph.triples()[0]
        corrupted = sampler.corrupt(triple, corrupt_tail=False)
        assert corrupted.tail == triple.tail

    def test_filtered_corruptions_are_not_facts(self, tiny_graph):
        sampler = NegativeSampler(tiny_graph, rng=0, filtered=True)
        for triple in tiny_graph.triples():
            corrupted = sampler.corrupt(triple)
            assert not tiny_graph.contains(corrupted.head, corrupted.relation, corrupted.tail)

    def test_unfiltered_returns_first_sample(self, tiny_graph):
        sampler = NegativeSampler(tiny_graph, rng=0, filtered=False)
        corrupted = sampler.corrupt(tiny_graph.triples()[0])
        assert 0 <= corrupted.tail < tiny_graph.num_entities


class TestBatches:
    def test_corrupt_batch_pairs(self, tiny_graph):
        sampler = NegativeSampler(tiny_graph, rng=0)
        triples = tiny_graph.triples()[:5]
        pairs = sampler.corrupt_batch(triples, negatives_per_positive=2)
        assert len(pairs) == 10
        assert all(positive in triples for positive, _ in pairs)

    def test_invalid_negatives_count(self, tiny_graph):
        sampler = NegativeSampler(tiny_graph, rng=0)
        with pytest.raises(ValueError):
            sampler.corrupt_batch(tiny_graph.triples(), negatives_per_positive=0)


class TestCandidateTails:
    def test_excludes_known_answers(self, tiny_graph):
        sampler = NegativeSampler(tiny_graph, rng=0)
        alice = tiny_graph.entity_id("alice")
        lives = tiny_graph.relation_id("lives_in")
        candidates = sampler.candidate_tails(alice, lives, num_candidates=5)
        known = tiny_graph.tails_for(alice, lives)
        assert not set(candidates.tolist()) & set(known)

    def test_returns_array(self, tiny_graph):
        sampler = NegativeSampler(tiny_graph, rng=0)
        candidates = sampler.candidate_tails(0, 1, num_candidates=3)
        assert isinstance(candidates, np.ndarray)
