"""Tests for knowledge-graph structural statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg.graph import KnowledgeGraph, Triple
from repro.kg.statistics import (
    degree_statistics,
    describe_dataset,
    describe_graph,
    forward_relation_ids,
    graph_density,
    multihop_answerable_fraction,
    relation_cardinality,
    relation_frequency_summary,
)


class TestDegreeAndDensity:
    def test_degree_statistics_tiny_graph(self, tiny_graph):
        stats = degree_statistics(tiny_graph)
        assert stats["max"] >= stats["mean"] >= stats["min"]
        assert stats["isolated"] == 0.0

    def test_density_in_unit_interval(self, tiny_graph):
        density = graph_density(tiny_graph)
        assert 0.0 < density < 1.0

    def test_density_of_trivial_graph(self):
        graph = KnowledgeGraph()
        graph.add_entity("only")
        assert graph_density(graph) == 0.0

    def test_empty_graph_degree_statistics(self):
        graph = KnowledgeGraph()
        stats = degree_statistics(graph)
        assert stats["mean"] == 0.0


class TestForwardRelations:
    def test_excludes_inverse_and_no_op(self, tiny_graph):
        forward = forward_relation_ids(tiny_graph)
        names = [tiny_graph.relations.symbol(r) for r in forward]
        assert "works_for" in names
        assert all(not name.startswith("inv::") for name in names)
        assert "NO_OP" not in names


class TestRelationCardinality:
    def test_many_to_one_relation_detected(self):
        graph = KnowledgeGraph()
        # Many employees -> one employer: N-1.
        for index in range(6):
            graph.add_triple_by_name(f"person_{index}", "works_for", "acme")
        # One-to-one marriages.
        graph.add_triple_by_name("a", "married_to", "b")
        graph.add_triple_by_name("c", "married_to", "d")
        cardinality = relation_cardinality(graph)
        assert cardinality["works_for"] == "N-1"
        assert cardinality["married_to"] == "1-1"

    def test_one_to_many_relation_detected(self):
        graph = KnowledgeGraph()
        for index in range(5):
            graph.add_triple_by_name("acme", "employs", f"person_{index}")
        assert relation_cardinality(graph)["employs"] == "1-N"


class TestRelationFrequencySummary:
    def test_summary_fields(self, tiny_graph):
        summary = relation_frequency_summary(tiny_graph)
        assert summary["relations"] > 0
        assert summary["max"] >= summary["mean"] >= summary["min"]
        assert 0.0 <= summary["gini"] <= 1.0

    def test_uniform_frequencies_have_low_gini(self):
        graph = KnowledgeGraph()
        for relation in ("r1", "r2", "r3"):
            for index in range(4):
                graph.add_triple_by_name(f"h_{relation}_{index}", relation, f"t_{relation}_{index}")
        assert relation_frequency_summary(graph)["gini"] == pytest.approx(0.0, abs=1e-9)


class TestMultihopAnswerable:
    def test_composed_fact_is_answerable(self, tiny_graph):
        # (alice, lives_in, berlin) has the alternative 2-hop path via acme.
        alice = tiny_graph.entity_id("alice")
        berlin = tiny_graph.entity_id("berlin")
        lives_in = tiny_graph.relation_id("lives_in")
        fraction = multihop_answerable_fraction(
            tiny_graph, [Triple(alice, lives_in, berlin)], max_hops=2
        )
        assert fraction == 1.0

    def test_unreachable_fact_is_not_answerable(self, tiny_graph):
        graph = KnowledgeGraph()
        graph.add_triple_by_name("x", "rel", "y")
        graph.add_triple_by_name("z", "rel", "w")
        triple = graph.triples()[0]
        # The only connection between x and y is the queried edge itself.
        assert multihop_answerable_fraction(graph, [triple], max_hops=2) == 0.0

    def test_empty_input(self, tiny_graph):
        assert multihop_answerable_fraction(tiny_graph, [], max_hops=2) == 0.0

    def test_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            multihop_answerable_fraction(tiny_graph, tiny_graph.triples(), max_hops=0)


class TestDescribe:
    def test_describe_graph_keys(self, tiny_graph):
        description = describe_graph(tiny_graph)
        assert description["entities"] == float(tiny_graph.num_entities)
        assert "degree_mean" in description
        assert "relation_freq_gini" in description

    def test_describe_dataset_includes_splits_and_modalities(self, tiny_dataset):
        description = describe_dataset(tiny_dataset, rng=0)
        sizes = tiny_dataset.splits.sizes()
        assert description["train_triples"] == float(sizes["train"])
        assert description["modal_coverage"] == pytest.approx(1.0)
        assert 0.0 <= description["test_multihop_answerable"] <= 1.0
        assert all(isinstance(value, float) for value in description.values())
