"""Dict-vs-CSR backend parity: same reads, same action spaces, same predictions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trainer import MMKGRPipeline
from repro.kg.csr import CSRKnowledgeGraph
from repro.kg.graph import KnowledgeGraph
from repro.kg.vocab import RangeVocabulary, Vocabulary
from repro.rl.environment import MKGEnvironment, Query
from repro.serve.reasoner import NO_ANSWER, Reasoner


@pytest.fixture(scope="module")
def csr_tiny(tiny_graph):
    return CSRKnowledgeGraph.from_graph(tiny_graph)


@pytest.fixture(scope="module")
def dataset_graphs(tiny_dataset):
    graph = tiny_dataset.graph
    return graph, CSRKnowledgeGraph.from_graph(graph)


class TestReadParity:
    def test_sizes(self, tiny_graph, csr_tiny):
        assert csr_tiny.num_entities == tiny_graph.num_entities
        assert csr_tiny.num_relations == tiny_graph.num_relations
        assert csr_tiny.num_triples == tiny_graph.num_triples
        assert len(csr_tiny) == len(tiny_graph)

    def test_triples_match_as_sets(self, tiny_graph, csr_tiny):
        assert {t.as_tuple() for t in csr_tiny.triples()} == {
            t.as_tuple() for t in tiny_graph.triples()
        }

    def test_outgoing_edges_match_as_sets(self, dataset_graphs):
        dict_graph, csr = dataset_graphs
        for entity in range(dict_graph.num_entities):
            assert sorted(csr.outgoing_edges(entity)) == sorted(
                dict_graph.outgoing_edges(entity)
            )

    def test_csr_rows_are_relation_tail_sorted(self, dataset_graphs):
        _, csr = dataset_graphs
        for entity in range(csr.num_entities):
            edges = csr.outgoing_edges(entity)
            assert edges == sorted(edges)

    def test_neighbors_and_degree_match(self, dataset_graphs):
        dict_graph, csr = dataset_graphs
        for entity in range(dict_graph.num_entities):
            assert csr.neighbors(entity) == dict_graph.neighbors(entity)
            assert csr.degree(entity) == dict_graph.degree(entity)

    def test_contains_forward_inverse_and_negatives(self, dataset_graphs):
        dict_graph, csr = dataset_graphs
        for triple in dict_graph.triples():
            assert csr.contains(triple.head, triple.relation, triple.tail)
            inverse = dict_graph.inverse_relation_id(triple.relation)
            assert csr.contains(triple.tail, inverse, triple.head)
        rng = np.random.default_rng(0)
        for _ in range(200):
            h, t = rng.integers(0, dict_graph.num_entities, size=2)
            r = rng.integers(0, dict_graph.num_relations)
            assert csr.contains(int(h), int(r), int(t)) == dict_graph.contains(
                int(h), int(r), int(t)
            )

    def test_tails_for_matches(self, dataset_graphs):
        dict_graph, csr = dataset_graphs
        for triple in dict_graph.triples():
            assert csr.tails_for(triple.head, triple.relation) == dict_graph.tails_for(
                triple.head, triple.relation
            )

    def test_relation_frequencies_match(self, dataset_graphs):
        dict_graph, csr = dataset_graphs
        assert csr.relation_frequencies() == dict_graph.relation_frequencies()

    def test_vocab_and_inverse_ids_shared(self, tiny_graph, csr_tiny):
        assert csr_tiny.entities is tiny_graph.entities
        works = tiny_graph.relation_id("works_for")
        assert csr_tiny.relation_id("works_for") == works
        assert csr_tiny.inverse_relation_id(works) == tiny_graph.inverse_relation_id(works)
        assert csr_tiny.no_op_relation_id == tiny_graph.no_op_relation_id
        no_op = csr_tiny.no_op_relation_id
        assert csr_tiny.inverse_relation_id(no_op) == no_op

    def test_paths_between_match(self, tiny_graph, csr_tiny):
        alice = tiny_graph.entity_id("alice")
        berlin = tiny_graph.entity_id("berlin")
        dict_paths = tiny_graph.paths_between(alice, berlin, max_hops=2, limit=1000)
        csr_paths = csr_tiny.paths_between(alice, berlin, max_hops=2, limit=1000)
        assert sorted(map(tuple, dict_paths)) == sorted(map(tuple, csr_paths))

    def test_subgraph_matches_dict_subgraph(self, tiny_graph, csr_tiny):
        subset = tiny_graph.triples()[:4]
        dict_sub = tiny_graph.subgraph(subset)
        csr_sub = csr_tiny.subgraph(subset)
        assert csr_sub.num_triples == dict_sub.num_triples
        for entity in range(dict_sub.num_entities):
            assert sorted(csr_sub.outgoing_edges(entity)) == sorted(
                dict_sub.outgoing_edges(entity)
            )

    def test_out_of_range_reads_are_safe(self, csr_tiny):
        assert csr_tiny.outgoing_edges(-1) == []
        assert csr_tiny.outgoing_edges(10**6) == []
        assert csr_tiny.neighbors(10**6) == ()
        assert csr_tiny.degree(10**6) == 0
        assert not csr_tiny.contains(10**6, 0, 0)
        assert csr_tiny.tails_for(10**6, 0) == frozenset()
        with pytest.raises(IndexError):
            csr_tiny.outgoing_arrays(10**6)


class TestConstruction:
    def test_from_triple_arrays_dedupes(self):
        entities = Vocabulary(["a", "b", "c"])
        relations = Vocabulary(["NO_OP", "r", "inv::r"])
        csr = CSRKnowledgeGraph.from_triple_arrays(
            np.array([0, 0, 1]),
            np.array([1, 1, 1]),
            np.array([1, 1, 2]),
            entity_vocab=entities,
            relation_vocab=relations,
        )
        assert csr.num_triples == 2

    def test_out_of_range_ids_rejected(self):
        entities = Vocabulary(["a", "b"])
        relations = Vocabulary(["NO_OP", "r", "inv::r"])
        with pytest.raises(IndexError):
            CSRKnowledgeGraph.from_triple_arrays(
                np.array([0]),
                np.array([1]),
                np.array([7]),
                entity_vocab=entities,
                relation_vocab=relations,
            )

    def test_empty_graph(self):
        graph = KnowledgeGraph()
        graph.add_entity("a")
        csr = CSRKnowledgeGraph.from_graph(graph)
        assert csr.num_triples == 0
        assert csr.outgoing_edges(0) == []
        assert csr.triples() == []

    def test_row_cache_counts_hits(self, csr_tiny):
        csr_tiny._row_cache.clear()
        csr_tiny.outgoing_edges(0)
        csr_tiny.outgoing_edges(0)
        stats = csr_tiny.row_cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_cached_rows_are_copied(self, csr_tiny):
        edges = csr_tiny.outgoing_edges(0)
        edges.append((0, 0))
        assert csr_tiny.outgoing_edges(0) != edges


class TestPersistence:
    def test_save_load_roundtrip(self, tiny_graph, csr_tiny, tmp_path):
        csr_tiny.save(tmp_path / "g")
        loaded = CSRKnowledgeGraph.load(tmp_path / "g")
        assert loaded.num_triples == csr_tiny.num_triples
        assert loaded.num_edges == csr_tiny.num_edges
        for entity in range(loaded.num_entities):
            assert loaded.outgoing_edges(entity) == csr_tiny.outgoing_edges(entity)
        assert loaded.entities.symbols() == tiny_graph.entities.symbols()
        assert loaded.relations.symbols() == tiny_graph.relations.symbols()

    def test_load_memory_maps_by_default(self, csr_tiny, tmp_path):
        csr_tiny.save(tmp_path / "g")
        loaded = CSRKnowledgeGraph.load(tmp_path / "g")
        assert isinstance(loaded._adj_tails, np.memmap)
        eager = CSRKnowledgeGraph.load(tmp_path / "g", mmap=False)
        assert not isinstance(eager._adj_tails, np.memmap)

    def test_range_vocabulary_roundtrip(self, tmp_path):
        relations = Vocabulary(["NO_OP", "r", "inv::r"])
        csr = CSRKnowledgeGraph.from_triple_arrays(
            np.array([0, 1]),
            np.array([1, 1]),
            np.array([1, 2]),
            entity_vocab=RangeVocabulary("e", 5),
            relation_vocab=relations,
        )
        csr.save(tmp_path / "g")
        loaded = CSRKnowledgeGraph.load(tmp_path / "g")
        assert isinstance(loaded.entities, RangeVocabulary)
        assert loaded.entity_id("e3") == 3
        assert not (tmp_path / "g" / "entities.json").exists()

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CSRKnowledgeGraph.load(tmp_path / "nothing")


class TestServingParity:
    """A trained agent must produce identical predictions over both backends."""

    @pytest.fixture(scope="class")
    def trained(self, tiny_dataset, tiny_preset):
        pipeline = MMKGRPipeline(tiny_dataset, preset=tiny_preset, rng=11)
        pipeline.train()
        return pipeline

    def _reasoner(self, trained, tiny_dataset, graph):
        # max_actions=None: prefix truncation depends on backend edge order,
        # so parity requires the full action space.
        environment = MKGEnvironment(
            graph, max_steps=trained.preset.model.max_steps, max_actions=None
        )
        pipeline = MMKGRPipeline.from_components(
            tiny_dataset,
            agent=trained.agent,
            environment=environment,
            features=trained.features,
            preset=trained.preset,
        )
        return Reasoner.from_pipeline(pipeline, beam_width=4)

    def test_environment_action_spaces_match(self, trained, tiny_dataset):
        dict_graph = tiny_dataset.splits.train_graph
        csr = CSRKnowledgeGraph.from_graph(dict_graph)
        env_dict = MKGEnvironment(dict_graph, max_steps=3, max_actions=None)
        env_csr = MKGEnvironment(csr, max_steps=3, max_actions=None)
        for entity in range(dict_graph.num_entities):
            query = Query(entity, 1, NO_ANSWER)
            state_a = env_dict.reset(query)
            state_b = env_csr.reset(query)
            assert sorted(env_dict.available_actions(state_a)) == sorted(
                env_csr.available_actions(state_b)
            )

    def test_beam_search_results_match(self, trained, tiny_dataset):
        dict_graph = tiny_dataset.splits.train_graph
        csr = CSRKnowledgeGraph.from_graph(dict_graph)
        r_dict = self._reasoner(trained, tiny_dataset, dict_graph)
        r_csr = self._reasoner(trained, tiny_dataset, csr)
        queries = [Query(t.head, t.relation, NO_ANSWER) for t in tiny_dataset.splits.test]
        for a, b in zip(r_dict.engine.run(queries), r_csr.engine.run(queries)):
            assert set(a.entity_log_probs) == set(b.entity_log_probs)
            for entity, log_prob in a.entity_log_probs.items():
                assert b.entity_log_probs[entity] == pytest.approx(log_prob, abs=1e-9)

    def test_query_batch_predictions_match(self, trained, tiny_dataset):
        dict_graph = tiny_dataset.splits.train_graph
        csr = CSRKnowledgeGraph.from_graph(dict_graph)
        r_dict = self._reasoner(trained, tiny_dataset, dict_graph)
        r_csr = self._reasoner(trained, tiny_dataset, csr)
        queries = [(t.head, t.relation) for t in tiny_dataset.splits.test[:10]]
        for preds_a, preds_b in zip(
            r_dict.query_batch(queries, k=3), r_csr.query_batch(queries, k=3)
        ):
            assert [p.entity for p in preds_a] == [p.entity for p in preds_b]
            for a, b in zip(preds_a, preds_b):
                assert a.score == pytest.approx(b.score, abs=1e-9)
