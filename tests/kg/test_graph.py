"""Tests for the structural knowledge graph."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg.graph import (
    NO_OP_RELATION,
    KnowledgeGraph,
    Triple,
    inverse_relation_name,
    is_inverse_relation,
)


class TestInverseNames:
    def test_inverse_is_involutive(self):
        assert inverse_relation_name(inverse_relation_name("likes")) == "likes"

    def test_is_inverse(self):
        assert is_inverse_relation(inverse_relation_name("likes"))
        assert not is_inverse_relation("likes")


class TestGraphConstruction:
    def test_add_triple_by_name_builds_vocab(self, tiny_graph):
        assert "alice" in tiny_graph.entities
        assert "works_for" in tiny_graph.relations

    def test_no_op_registered(self, tiny_graph):
        assert tiny_graph.no_op_relation_id is not None
        assert tiny_graph.relations.symbol(tiny_graph.no_op_relation_id) == NO_OP_RELATION

    def test_duplicate_triples_ignored(self):
        graph = KnowledgeGraph()
        graph.add_triple_by_name("a", "r", "b")
        graph.add_triple_by_name("a", "r", "b")
        assert graph.num_triples == 1

    def test_out_of_range_triple_raises(self):
        graph = KnowledgeGraph()
        graph.add_entity("a")
        graph.add_relation("r")
        with pytest.raises(IndexError):
            graph.add_triple(Triple(0, 1, 99))

    def test_contains_forward_and_inverse(self, tiny_graph):
        alice = tiny_graph.entity_id("alice")
        acme = tiny_graph.entity_id("acme")
        works = tiny_graph.relation_id("works_for")
        assert tiny_graph.contains(alice, works, acme)
        inverse = tiny_graph.inverse_relation_id(works)
        assert tiny_graph.contains(acme, inverse, alice)

    def test_triples_counts_only_forward_facts(self, tiny_graph):
        assert tiny_graph.num_triples == 12
        assert len(tiny_graph.triples()) == 12
        assert len(tiny_graph) == 12


class TestAdjacency:
    def test_outgoing_edges_include_inverse(self, tiny_graph):
        acme = tiny_graph.entity_id("acme")
        relations = {relation for relation, _ in tiny_graph.outgoing_edges(acme)}
        inverse_works = tiny_graph.inverse_relation_id(tiny_graph.relation_id("works_for"))
        assert tiny_graph.relation_id("located_in") in relations
        assert inverse_works in relations

    def test_neighbors(self, tiny_graph):
        alice = tiny_graph.entity_id("alice")
        names = {tiny_graph.entities.symbol(n) for n in tiny_graph.neighbors(alice)}
        assert {"acme", "berlin", "bob"} <= names

    def test_neighbors_deterministic_sorted_tuple(self, tiny_graph):
        """Regression: neighbors() used to return a set, whose iteration order
        varies under hash randomization; consumers iterating it (entity
        descriptions, state featurization) then differed across processes."""
        alice = tiny_graph.entity_id("alice")
        neighbors = tiny_graph.neighbors(alice)
        assert isinstance(neighbors, tuple)
        assert list(neighbors) == sorted(neighbors)
        assert len(set(neighbors)) == len(neighbors)
        assert tiny_graph.neighbors(alice) == neighbors

    def test_neighbors_unknown_entity_is_empty(self, tiny_graph):
        assert tiny_graph.neighbors(10**6) == ()

    def test_degree_matches_outgoing(self, tiny_graph):
        for entity in range(tiny_graph.num_entities):
            assert tiny_graph.degree(entity) == len(tiny_graph.outgoing_edges(entity))

    def test_tails_for_query(self, tiny_graph):
        alice = tiny_graph.entity_id("alice")
        lives = tiny_graph.relation_id("lives_in")
        tails = tiny_graph.tails_for(alice, lives)
        assert tails == frozenset({tiny_graph.entity_id("berlin")})

    def test_relation_frequencies(self, tiny_graph):
        frequencies = tiny_graph.relation_frequencies()
        works = tiny_graph.relation_id("works_for")
        assert frequencies[works] == 3

    def test_inverse_of_no_op_is_no_op(self, tiny_graph):
        no_op = tiny_graph.no_op_relation_id
        assert tiny_graph.inverse_relation_id(no_op) == no_op


class TestSubgraphAndPaths:
    def test_subgraph_shares_vocab_and_restricts_edges(self, tiny_graph):
        subset = tiny_graph.triples()[:4]
        subgraph = tiny_graph.subgraph(subset)
        assert subgraph.num_entities == tiny_graph.num_entities
        assert subgraph.num_triples == 4

    def test_paths_between_finds_composition(self, tiny_graph):
        alice = tiny_graph.entity_id("alice")
        berlin = tiny_graph.entity_id("berlin")
        paths = tiny_graph.paths_between(alice, berlin, max_hops=2)
        # At least the 1-hop lives_in edge and the 2-hop works_for/located_in path.
        assert any(len(p) == 1 for p in paths)
        assert any(len(p) == 2 for p in paths)

    def test_paths_between_invalid_hops(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.paths_between(0, 1, max_hops=0)

    def test_paths_between_respects_limit(self, tiny_graph):
        alice = tiny_graph.entity_id("alice")
        berlin = tiny_graph.entity_id("berlin")
        assert len(tiny_graph.paths_between(alice, berlin, max_hops=3, limit=1)) == 1


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=9),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_property_inverse_edges_are_consistent(raw_triples):
    """For every forward edge there is an inverse edge and vice versa."""
    graph = KnowledgeGraph()
    for index in range(10):
        graph.add_entity(f"e{index}")
    for index in range(3):
        graph.add_relation(f"r{index}")
    for head, relation, tail in raw_triples:
        graph.add_triple(Triple(head, graph.relation_id(f"r{relation}"), tail))

    for triple in graph.triples():
        inverse_relation = graph.inverse_relation_id(triple.relation)
        assert graph.contains(triple.tail, inverse_relation, triple.head)
        # The inverse edge appears in the tail entity's action space.
        assert (inverse_relation, triple.head) in graph.outgoing_edges(triple.tail)
