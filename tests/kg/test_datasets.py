"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg.datasets import (
    DATASET_REGISTRY,
    SyntheticMKGConfig,
    build_dataset,
    build_named_dataset,
    fb_img_txt_config,
    paper_table2_reference,
    wn9_img_txt_config,
)


class TestConfigs:
    def test_registry_contains_both_datasets(self):
        assert set(DATASET_REGISTRY) == {"wn9-img-txt", "fb-img-txt"}

    def test_wn9_analogue_has_few_relations(self):
        config = wn9_img_txt_config()
        assert config.num_relations == 9  # matches the real WN9-IMG-TXT relation count

    def test_fb_analogue_has_more_relations_and_entities(self):
        wn9 = wn9_img_txt_config()
        fb = fb_img_txt_config()
        assert fb.num_relations > wn9.num_relations
        assert fb.num_entities > wn9.num_entities
        assert fb.images_per_entity > wn9.images_per_entity

    def test_invalid_configs_raise(self):
        with pytest.raises(ValueError):
            SyntheticMKGConfig(name="x", num_entities=5, num_base_relations=3,
                               num_composed_relations=1, avg_degree=2.0)
        with pytest.raises(ValueError):
            SyntheticMKGConfig(name="x", num_entities=50, num_base_relations=1,
                               num_composed_relations=1, avg_degree=2.0)
        with pytest.raises(ValueError):
            SyntheticMKGConfig(name="x", num_entities=50, num_base_relations=3,
                               num_composed_relations=1, avg_degree=2.0,
                               modality_informativeness=1.5)


class TestBuildDataset:
    def test_statistics_match_config(self, tiny_dataset, tiny_dataset_config):
        stats = tiny_dataset.statistics
        assert stats.num_entities == tiny_dataset_config.num_entities
        assert stats.num_relations == tiny_dataset_config.num_relations
        assert stats.num_train > 0 and stats.num_test > 0

    def test_modalities_attached_to_every_entity(self, tiny_dataset):
        assert tiny_dataset.mkg.coverage() == pytest.approx(1.0)

    def test_modal_dimensions(self, tiny_dataset, tiny_dataset_config):
        assert tiny_dataset.mkg.image_dim == tiny_dataset_config.image_dim
        assert tiny_dataset.mkg.text_dim == tiny_dataset_config.text_dim

    def test_every_entity_has_outgoing_edges(self, tiny_dataset):
        graph = tiny_dataset.graph
        assert all(graph.degree(entity) > 0 for entity in range(graph.num_entities))

    def test_composed_relations_have_supporting_paths(self, tiny_dataset):
        """Most composed-relation facts are explainable by a 2-hop path."""
        graph = tiny_dataset.graph
        composed_ids = [
            graph.relation_id(name)
            for name in graph.relations.symbols()
            if name.startswith("composed_rel_")
        ]
        composed_triples = [t for t in graph.triples() if t.relation in composed_ids]
        assert composed_triples, "the generator must produce composed facts"
        supported = 0
        for triple in composed_triples[:30]:
            paths = graph.paths_between(triple.head, triple.tail, max_hops=2, limit=5)
            if any(len(path) == 2 for path in paths):
                supported += 1
        assert supported / min(30, len(composed_triples)) > 0.5

    def test_deterministic_given_seed(self, tiny_dataset_config):
        a = build_dataset(tiny_dataset_config)
        b = build_dataset(tiny_dataset_config)
        assert [t.as_tuple() for t in a.graph.triples()] == [
            t.as_tuple() for t in b.graph.triples()
        ]
        np.testing.assert_allclose(a.mkg.image_matrix(), b.mkg.image_matrix())

    def test_entity_latents_shape(self, tiny_dataset, tiny_dataset_config):
        assert tiny_dataset.entity_latents.shape == (
            tiny_dataset_config.num_entities,
            tiny_dataset_config.latent_dim,
        )

    def test_image_features_correlate_with_latents(self, tiny_dataset):
        """Entities with similar latents should have more similar image features."""
        latents = tiny_dataset.entity_latents
        images = tiny_dataset.mkg.image_matrix()
        rng = np.random.default_rng(0)
        wins = 0
        trials = 30
        for _ in range(trials):
            a, b, c = rng.choice(latents.shape[0], size=3, replace=False)
            latent_ab = np.linalg.norm(latents[a] - latents[b])
            latent_ac = np.linalg.norm(latents[a] - latents[c])
            image_ab = np.linalg.norm(images[a] - images[b])
            image_ac = np.linalg.norm(images[a] - images[c])
            if (latent_ab < latent_ac) == (image_ab < image_ac):
                wins += 1
        assert wins / trials > 0.6


class TestNamedDatasets:
    def test_build_named_dataset(self):
        dataset = build_named_dataset("wn9-img-txt", scale=0.2)
        assert dataset.statistics.num_relations == 9

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_named_dataset("unknown-dataset")

    def test_paper_reference_rows(self):
        rows = paper_table2_reference()
        assert len(rows) == 2
        assert rows[0][1] == 6555
