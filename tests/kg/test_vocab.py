"""Tests for the Vocabulary."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg.vocab import Vocabulary


def test_add_assigns_sequential_ids():
    vocab = Vocabulary()
    assert vocab.add("a") == 0
    assert vocab.add("b") == 1
    assert vocab.add("a") == 0  # repeated add returns existing id


def test_constructor_accepts_iterable():
    vocab = Vocabulary(["x", "y", "x"])
    assert len(vocab) == 2


def test_index_and_symbol_roundtrip():
    vocab = Vocabulary(["alpha", "beta"])
    assert vocab.symbol(vocab.index("beta")) == "beta"


def test_unknown_symbol_raises():
    with pytest.raises(KeyError):
        Vocabulary().index("missing")


def test_out_of_range_index_raises():
    with pytest.raises(IndexError):
        Vocabulary(["a"]).symbol(5)


def test_contains_and_iteration():
    vocab = Vocabulary(["a", "b"])
    assert "a" in vocab and "c" not in vocab
    assert list(vocab) == ["a", "b"]
    assert vocab.symbols() == ["a", "b"]


def test_invalid_symbol_raises():
    with pytest.raises(ValueError):
        Vocabulary().add("")
    with pytest.raises(ValueError):
        Vocabulary().add(123)  # type: ignore[arg-type]


def test_to_from_dict_roundtrip():
    vocab = Vocabulary(["a", "b", "c"])
    rebuilt = Vocabulary.from_dict(vocab.to_dict())
    assert rebuilt.symbols() == vocab.symbols()


def test_from_dict_rejects_non_contiguous_ids():
    with pytest.raises(ValueError):
        Vocabulary.from_dict({"a": 0, "b": 2})


@settings(max_examples=30, deadline=None)
@given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=5), min_size=1, max_size=20))
def test_property_ids_are_dense_and_stable(symbols):
    vocab = Vocabulary(symbols)
    # Ids cover 0..len-1 exactly and lookups are mutually consistent.
    assert sorted(vocab.to_dict().values()) == list(range(len(vocab)))
    for symbol in symbols:
        assert vocab.symbol(vocab.index(symbol)) == symbol
