"""Tests for triple file IO."""

from __future__ import annotations

import pytest

from repro.kg.io import (
    graph_from_string_triples,
    graph_to_string_triples,
    load_graph,
    read_triples_tsv,
    save_graph,
    write_triples_tsv,
)


def test_write_and_read_roundtrip(tmp_path):
    triples = [("a", "r1", "b"), ("b", "r2", "c")]
    path = write_triples_tsv(tmp_path / "triples.tsv", triples)
    assert read_triples_tsv(path) == triples


def test_read_skips_blank_lines(tmp_path):
    path = tmp_path / "triples.tsv"
    path.write_text("a\tr\tb\n\n\nc\tr\td\n", encoding="utf-8")
    assert len(read_triples_tsv(path)) == 2


def test_read_malformed_line_raises(tmp_path):
    path = tmp_path / "bad.tsv"
    path.write_text("a\tr\n", encoding="utf-8")
    with pytest.raises(ValueError):
        read_triples_tsv(path)


def test_graph_from_string_triples():
    graph = graph_from_string_triples([("a", "r", "b"), ("b", "r", "c")])
    assert graph.num_entities == 3
    assert graph.num_triples == 2


def test_graph_roundtrip_through_files(tmp_path, tiny_graph):
    path = save_graph(tiny_graph, tmp_path / "graph.tsv")
    reloaded = load_graph(path)
    assert reloaded.num_triples == tiny_graph.num_triples
    assert set(graph_to_string_triples(reloaded)) == set(graph_to_string_triples(tiny_graph))


def test_write_creates_parent_dirs(tmp_path):
    path = write_triples_tsv(tmp_path / "deep" / "dir" / "t.tsv", [("a", "r", "b")])
    assert path.exists()
