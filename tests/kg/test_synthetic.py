"""Property tests for the scale-free synthetic generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg.graph import NO_OP_RELATION, inverse_relation_name
from repro.kg.synthetic import (
    ScaleFreeKGConfig,
    build_scale_free_mkg,
    fit_degree_exponent,
    forward_relation_id,
    generate_scale_free_graph,
    relation_vocabulary,
)
from repro.kg.vocab import RangeVocabulary


CONFIG = ScaleFreeKGConfig(num_entities=5000, num_relations=10, avg_degree=6.0, seed=17)


@pytest.fixture(scope="module")
def graph():
    return generate_scale_free_graph(CONFIG)


class TestDeterminism:
    def test_seeded_replay_is_identical(self, graph):
        replay = generate_scale_free_graph(CONFIG)
        assert np.array_equal(replay.triples_array(), graph.triples_array())
        assert np.array_equal(replay._indptr, graph._indptr)
        assert np.array_equal(replay._adj_tails, graph._adj_tails)
        assert np.array_equal(replay._adj_relations, graph._adj_relations)

    def test_different_seed_differs(self, graph):
        other = generate_scale_free_graph(
            ScaleFreeKGConfig(
                num_entities=CONFIG.num_entities,
                num_relations=CONFIG.num_relations,
                avg_degree=CONFIG.avg_degree,
                seed=CONFIG.seed + 1,
            )
        )
        assert not np.array_equal(other.triples_array(), graph.triples_array())

    def test_mkg_features_replay_identical(self):
        config = ScaleFreeKGConfig(num_entities=500, num_relations=4, seed=3)
        mkg_a, _ = build_scale_free_mkg(config)
        mkg_b, _ = build_scale_free_mkg(config)
        assert np.array_equal(mkg_a.image_matrix(), mkg_b.image_matrix())
        assert np.array_equal(mkg_a.text_matrix(), mkg_b.text_matrix())


class TestStructure:
    def test_requested_size(self, graph):
        assert graph.num_entities == CONFIG.num_entities
        assert graph.num_relations == 2 * CONFIG.num_relations + 1
        assert isinstance(graph.entities, RangeVocabulary)

    def test_edge_count_near_target(self, graph):
        # Dedup and self-loop removal shed some draws; hub collisions make
        # the loss non-trivial but bounded.
        assert graph.num_triples >= 0.5 * CONFIG.num_forward_edges
        assert graph.num_triples <= CONFIG.num_forward_edges + CONFIG.num_entities

    def test_no_isolated_entities(self, graph):
        degrees = np.diff(graph._indptr)
        assert int((degrees == 0).sum()) == 0

    def test_no_self_loops_in_forward_triples(self, graph):
        triples = graph.triples_array()
        assert not np.any(triples[:, 0] == triples[:, 2])

    def test_degree_tail_exponent_within_tolerance(self, graph):
        degrees = np.diff(graph._indptr)
        alpha = fit_degree_exponent(degrees)
        assert CONFIG.degree_exponent - 0.5 <= alpha <= CONFIG.degree_exponent + 0.5

    def test_relation_vocabulary_layout(self):
        vocab = relation_vocabulary(3)
        assert vocab.symbol(0) == NO_OP_RELATION
        for index in range(3):
            name = vocab.symbol(forward_relation_id(index))
            assert name == f"rel_{index:03d}"
            assert vocab.symbol(forward_relation_id(index) + 1) == inverse_relation_name(name)

    def test_relation_frequencies_are_long_tailed(self, graph):
        counts = graph.relation_frequencies()
        first = counts[forward_relation_id(0)]
        last = counts.get(forward_relation_id(CONFIG.num_relations - 1), 0)
        assert first > last

    def test_inverse_edges_present(self, graph):
        triples = graph.triples_array()[:50]
        for head, relation, tail in triples:
            inverse = graph.inverse_relation_id(int(relation))
            assert graph.contains(int(tail), inverse, int(head))


class TestModalities:
    @pytest.mark.parametrize("image_coverage,text_coverage", [(0.5, 0.9), (1.0, 1.0), (0.0, 1.0)])
    def test_coverage_honored(self, image_coverage, text_coverage):
        config = ScaleFreeKGConfig(
            num_entities=2000,
            num_relations=4,
            image_coverage=image_coverage,
            text_coverage=text_coverage,
            seed=5,
        )
        mkg, _ = build_scale_free_mkg(config)
        image = mkg.image_matrix()
        text = mkg.text_matrix()
        image_fraction = np.mean(np.any(image != 0.0, axis=1))
        text_fraction = np.mean(np.any(text != 0.0, axis=1))
        assert image_fraction == pytest.approx(image_coverage, abs=0.02)
        assert text_fraction == pytest.approx(text_coverage, abs=0.02)

    def test_combined_coverage_mask(self):
        config = ScaleFreeKGConfig(
            num_entities=1000, num_relations=4, image_coverage=0.3, text_coverage=0.4, seed=9
        )
        mkg, _ = build_scale_free_mkg(config)
        # coverage() reports entities with at least one real modality.
        assert 0.4 <= mkg.coverage() <= 0.7
        assert mkg.matrix_backed

    def test_modalities_roundtrip_through_save(self, tmp_path):
        config = ScaleFreeKGConfig(
            num_entities=300, num_relations=3, image_coverage=0.5, seed=2
        )
        mkg, graph = build_scale_free_mkg(config)
        graph.save(tmp_path / "g")
        mkg.save_modalities(tmp_path / "g")
        from repro.kg.csr import CSRKnowledgeGraph
        from repro.kg.multimodal import MultiModalKnowledgeGraph

        loaded_graph = CSRKnowledgeGraph.load(tmp_path / "g")
        loaded = MultiModalKnowledgeGraph.load_modalities(tmp_path / "g", loaded_graph)
        assert np.array_equal(loaded.image_matrix(), mkg.image_matrix())
        assert loaded.coverage() == pytest.approx(mkg.coverage())


class TestValidation:
    def test_bad_exponent_rejected(self):
        with pytest.raises(ValueError):
            ScaleFreeKGConfig(degree_exponent=1.2)

    def test_bad_coverage_rejected(self):
        with pytest.raises(ValueError):
            ScaleFreeKGConfig(image_coverage=1.5)

    def test_bad_degree_rejected(self):
        with pytest.raises(ValueError):
            ScaleFreeKGConfig(avg_degree=0.0)

    def test_exponent_fit_needs_data(self):
        with pytest.raises(ValueError):
            fit_degree_exponent(np.array([1, 2, 3]))
