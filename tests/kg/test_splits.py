"""Tests for dataset splitting."""

from __future__ import annotations

import pytest

from repro.kg.splits import queries_from_triples, sample_triples, split_triples


class TestSplitTriples:
    def test_partition_is_disjoint_and_complete(self, tiny_graph):
        splits = split_triples(tiny_graph, valid_fraction=0.2, test_fraction=0.2, rng=0)
        all_keys = [t.as_tuple() for t in splits.all_triples()]
        assert len(all_keys) == tiny_graph.num_triples
        assert len(set(all_keys)) == len(all_keys)

    def test_sizes_roughly_match_fractions(self, tiny_graph):
        splits = split_triples(tiny_graph, valid_fraction=0.2, test_fraction=0.2, rng=0)
        sizes = splits.sizes()
        assert sizes["train"] >= sizes["valid"]
        assert sizes["train"] >= sizes["test"]

    def test_entity_coverage_in_train(self, tiny_dataset):
        """Every entity/relation in held-out triples also appears in training."""
        splits = tiny_dataset.splits
        train_entities = set()
        train_relations = set()
        for triple in splits.train:
            train_entities.update((triple.head, triple.tail))
            train_relations.add(triple.relation)
        for triple in splits.valid + splits.test:
            assert triple.head in train_entities
            assert triple.tail in train_entities
            assert triple.relation in train_relations

    def test_train_graph_excludes_heldout_edges(self, tiny_graph):
        splits = split_triples(tiny_graph, valid_fraction=0.2, test_fraction=0.2, rng=0)
        for triple in splits.test:
            assert not splits.train_graph.contains(triple.head, triple.relation, triple.tail)

    def test_invalid_fractions_raise(self, tiny_graph):
        with pytest.raises(ValueError):
            split_triples(tiny_graph, valid_fraction=0.6, test_fraction=0.6)
        with pytest.raises(ValueError):
            split_triples(tiny_graph, valid_fraction=-0.1, test_fraction=0.1)

    def test_deterministic_given_seed(self, tiny_graph):
        a = split_triples(tiny_graph, rng=5)
        b = split_triples(tiny_graph, rng=5)
        assert [t.as_tuple() for t in a.test] == [t.as_tuple() for t in b.test]


class TestHelpers:
    def test_queries_from_triples(self, tiny_graph):
        triples = tiny_graph.triples()[:3]
        queries = queries_from_triples(triples)
        assert queries[0] == triples[0].as_tuple()

    def test_sample_triples_size(self, tiny_graph):
        triples = tiny_graph.triples()
        subset = sample_triples(triples, 0.5, rng=0)
        assert len(subset) == round(0.5 * len(triples))

    def test_sample_triples_full(self, tiny_graph):
        triples = tiny_graph.triples()
        assert len(sample_triples(triples, 1.0, rng=0)) == len(triples)

    def test_sample_triples_invalid_fraction(self, tiny_graph):
        with pytest.raises(ValueError):
            sample_triples(tiny_graph.triples(), 0.0)
