"""Tests for the multi-modal knowledge graph wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg.graph import KnowledgeGraph
from repro.kg.multimodal import EntityModalities, MultiModalKnowledgeGraph


@pytest.fixture()
def small_mkg(tiny_graph) -> MultiModalKnowledgeGraph:
    mkg = MultiModalKnowledgeGraph(tiny_graph, image_dim=4, text_dim=3, name="test")
    rng = np.random.default_rng(0)
    for entity in range(tiny_graph.num_entities):
        mkg.attach_modalities(
            entity,
            EntityModalities(
                image=rng.normal(size=4), text=rng.normal(size=3), description=f"entity {entity}"
            ),
        )
    return mkg


class TestEntityModalities:
    def test_validates_dimensions(self):
        with pytest.raises(ValueError):
            EntityModalities(image=np.zeros((2, 2)), text=np.zeros(3))

    def test_validates_num_images(self):
        with pytest.raises(ValueError):
            EntityModalities(image=np.zeros(3), text=np.zeros(3), num_images=-1)

    def test_casts_to_float(self):
        modality = EntityModalities(image=[1, 2], text=[3, 4])
        assert modality.image.dtype == np.float64


class TestMultiModalKnowledgeGraph:
    def test_dimension_validation_on_attach(self, tiny_graph):
        mkg = MultiModalKnowledgeGraph(tiny_graph, image_dim=4, text_dim=3)
        with pytest.raises(ValueError):
            mkg.attach_modalities(0, EntityModalities(image=np.zeros(5), text=np.zeros(3)))

    def test_attach_out_of_range_entity(self, tiny_graph):
        mkg = MultiModalKnowledgeGraph(tiny_graph, image_dim=4, text_dim=3)
        with pytest.raises(IndexError):
            mkg.attach_modalities(999, EntityModalities(image=np.zeros(4), text=np.zeros(3)))

    def test_invalid_dims_at_construction(self, tiny_graph):
        with pytest.raises(ValueError):
            MultiModalKnowledgeGraph(tiny_graph, image_dim=0, text_dim=3)

    def test_modalities_lookup(self, small_mkg):
        modality = small_mkg.modalities(0)
        assert modality.image.shape == (4,)
        assert small_mkg.has_modalities(0)

    def test_missing_modalities_raise(self, tiny_graph):
        mkg = MultiModalKnowledgeGraph(tiny_graph, image_dim=4, text_dim=3)
        assert not mkg.has_modalities(0)
        with pytest.raises(KeyError):
            mkg.modalities(0)

    def test_coverage(self, small_mkg, tiny_graph):
        assert small_mkg.coverage() == pytest.approx(1.0)
        empty = MultiModalKnowledgeGraph(tiny_graph, image_dim=4, text_dim=3)
        assert empty.coverage() == 0.0

    def test_feature_matrices_shapes(self, small_mkg):
        assert small_mkg.image_matrix().shape == (small_mkg.num_entities, 4)
        assert small_mkg.text_matrix().shape == (small_mkg.num_entities, 3)

    def test_matrix_rows_match_lookup(self, small_mkg):
        np.testing.assert_allclose(small_mkg.image_matrix()[2], small_mkg.image_feature(2))
        np.testing.assert_allclose(small_mkg.text_matrix()[2], small_mkg.text_feature(2))

    def test_passthrough_methods(self, small_mkg, tiny_graph):
        alice = tiny_graph.entity_id("alice")
        assert small_mkg.outgoing_edges(alice) == tiny_graph.outgoing_edges(alice)
        assert small_mkg.neighbors(alice) == tiny_graph.neighbors(alice)
        assert small_mkg.num_relations == tiny_graph.num_relations
        assert small_mkg.num_triples == tiny_graph.num_triples

    def test_statistics_layout(self, small_mkg):
        stats = small_mkg.statistics()
        assert stats["entities"] == small_mkg.num_entities
        assert stats["modal_coverage"] == pytest.approx(1.0)
