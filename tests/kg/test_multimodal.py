"""Tests for the multi-modal knowledge graph wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg.multimodal import EntityModalities, MultiModalKnowledgeGraph


@pytest.fixture()
def small_mkg(tiny_graph) -> MultiModalKnowledgeGraph:
    mkg = MultiModalKnowledgeGraph(tiny_graph, image_dim=4, text_dim=3, name="test")
    rng = np.random.default_rng(0)
    for entity in range(tiny_graph.num_entities):
        mkg.attach_modalities(
            entity,
            EntityModalities(
                image=rng.normal(size=4), text=rng.normal(size=3), description=f"entity {entity}"
            ),
        )
    return mkg


class TestEntityModalities:
    def test_validates_dimensions(self):
        with pytest.raises(ValueError):
            EntityModalities(image=np.zeros((2, 2)), text=np.zeros(3))

    def test_validates_num_images(self):
        with pytest.raises(ValueError):
            EntityModalities(image=np.zeros(3), text=np.zeros(3), num_images=-1)

    def test_casts_to_float(self):
        modality = EntityModalities(image=[1, 2], text=[3, 4])
        assert modality.image.dtype == np.float64


class TestMultiModalKnowledgeGraph:
    def test_dimension_validation_on_attach(self, tiny_graph):
        mkg = MultiModalKnowledgeGraph(tiny_graph, image_dim=4, text_dim=3)
        with pytest.raises(ValueError):
            mkg.attach_modalities(0, EntityModalities(image=np.zeros(5), text=np.zeros(3)))

    def test_attach_out_of_range_entity(self, tiny_graph):
        mkg = MultiModalKnowledgeGraph(tiny_graph, image_dim=4, text_dim=3)
        with pytest.raises(IndexError):
            mkg.attach_modalities(999, EntityModalities(image=np.zeros(4), text=np.zeros(3)))

    def test_invalid_dims_at_construction(self, tiny_graph):
        with pytest.raises(ValueError):
            MultiModalKnowledgeGraph(tiny_graph, image_dim=0, text_dim=3)

    def test_modalities_lookup(self, small_mkg):
        modality = small_mkg.modalities(0)
        assert modality.image.shape == (4,)
        assert small_mkg.has_modalities(0)

    def test_missing_modalities_raise(self, tiny_graph):
        mkg = MultiModalKnowledgeGraph(tiny_graph, image_dim=4, text_dim=3)
        assert not mkg.has_modalities(0)
        with pytest.raises(KeyError):
            mkg.modalities(0)

    def test_coverage(self, small_mkg, tiny_graph):
        assert small_mkg.coverage() == pytest.approx(1.0)
        empty = MultiModalKnowledgeGraph(tiny_graph, image_dim=4, text_dim=3)
        assert empty.coverage() == 0.0

    def test_feature_matrices_shapes(self, small_mkg):
        assert small_mkg.image_matrix().shape == (small_mkg.num_entities, 4)
        assert small_mkg.text_matrix().shape == (small_mkg.num_entities, 3)

    def test_matrix_rows_match_lookup(self, small_mkg):
        np.testing.assert_allclose(small_mkg.image_matrix()[2], small_mkg.image_feature(2))
        np.testing.assert_allclose(small_mkg.text_matrix()[2], small_mkg.text_feature(2))

    def test_passthrough_methods(self, small_mkg, tiny_graph):
        alice = tiny_graph.entity_id("alice")
        assert small_mkg.outgoing_edges(alice) == tiny_graph.outgoing_edges(alice)
        assert small_mkg.neighbors(alice) == tiny_graph.neighbors(alice)
        assert small_mkg.num_relations == tiny_graph.num_relations
        assert small_mkg.num_triples == tiny_graph.num_triples

    def test_statistics_layout(self, small_mkg):
        stats = small_mkg.statistics()
        assert stats["entities"] == small_mkg.num_entities
        assert stats["modal_coverage"] == pytest.approx(1.0)


class TestMatrixBacked:
    @pytest.fixture()
    def matrix_mkg(self, tiny_graph) -> MultiModalKnowledgeGraph:
        rng = np.random.default_rng(1)
        n = tiny_graph.num_entities
        mask = np.zeros(n, dtype=bool)
        mask[: n // 2] = True
        image = rng.normal(size=(n, 4)).astype(np.float32)
        text = rng.normal(size=(n, 3)).astype(np.float32)
        image[~mask] = 0.0
        text[~mask] = 0.0
        return MultiModalKnowledgeGraph.from_matrices(
            tiny_graph, image, text, coverage_mask=mask, name="matrix"
        )

    def test_matrices_returned_without_copy(self, matrix_mkg):
        assert matrix_mkg.matrix_backed
        assert matrix_mkg.image_matrix() is matrix_mkg.image_matrix()
        assert matrix_mkg.image_matrix().dtype == np.float32

    def test_row_lookup_and_coverage(self, matrix_mkg, tiny_graph):
        n = tiny_graph.num_entities
        assert matrix_mkg.has_modalities(0)
        assert not matrix_mkg.has_modalities(n - 1)
        assert not matrix_mkg.has_modalities(n + 5)
        np.testing.assert_allclose(
            matrix_mkg.image_feature(1), matrix_mkg.image_matrix()[1]
        )
        assert matrix_mkg.coverage() == pytest.approx((n // 2) / n)
        with pytest.raises(KeyError):
            matrix_mkg.modalities(n - 1)
        assert matrix_mkg.modalities(0).image.shape == (4,)

    def test_read_only(self, matrix_mkg):
        with pytest.raises(TypeError):
            matrix_mkg.attach_modalities(
                0, EntityModalities(image=np.zeros(4), text=np.zeros(3))
            )

    def test_shape_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            MultiModalKnowledgeGraph.from_matrices(
                tiny_graph, np.zeros((3, 4)), np.zeros((tiny_graph.num_entities, 3))
            )
        with pytest.raises(ValueError):
            MultiModalKnowledgeGraph.from_matrices(
                tiny_graph,
                np.zeros((tiny_graph.num_entities, 4)),
                np.zeros((tiny_graph.num_entities, 3)),
                coverage_mask=np.ones(3, dtype=bool),
            )

    def test_broadcast_zero_matrices(self, tiny_graph):
        n = tiny_graph.num_entities
        zero = np.zeros((), dtype=np.float32)
        mkg = MultiModalKnowledgeGraph.from_matrices(
            tiny_graph,
            np.broadcast_to(zero, (n, 8)),
            np.broadcast_to(zero, (n, 8)),
        )
        assert mkg.image_matrix().shape == (n, 8)
        # Stride-0 broadcast: the matrix occupies no per-row memory.
        assert mkg.image_matrix().strides == (0, 0)
        assert mkg.coverage() == 1.0

    def test_save_load_roundtrip(self, matrix_mkg, tiny_graph, tmp_path):
        matrix_mkg.save_modalities(tmp_path)
        loaded = MultiModalKnowledgeGraph.load_modalities(tmp_path, tiny_graph)
        assert loaded.matrix_backed
        assert isinstance(loaded.image_matrix(), np.memmap)
        np.testing.assert_allclose(loaded.image_matrix(), matrix_mkg.image_matrix())
        assert loaded.coverage() == pytest.approx(matrix_mkg.coverage())
        assert loaded.name == "matrix"

    def test_dict_backed_save_load(self, small_mkg, tiny_graph, tmp_path):
        small_mkg.save_modalities(tmp_path)
        loaded = MultiModalKnowledgeGraph.load_modalities(tmp_path, tiny_graph)
        np.testing.assert_allclose(
            loaded.image_matrix(), small_mkg.image_matrix(), rtol=1e-6
        )
        assert loaded.coverage() == 1.0
        # Full coverage: no mask file is written.
        assert not (tmp_path / "modal_coverage.npy").exists()

    def test_load_missing_directory_raises(self, tiny_graph, tmp_path):
        with pytest.raises(FileNotFoundError):
            MultiModalKnowledgeGraph.load_modalities(tmp_path / "nope", tiny_graph)
