"""Tests for the baseline registry and each baseline model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_REGISTRY,
    available_baselines,
    get_baseline,
    run_baseline,
)
from repro.baselines.mtrl import MultiModalTransE, forward_relations
from repro.baselines.neurallp import RuleReasoner
from repro.baselines.gaats import AttenuatedAttentionModel
from repro.embeddings.transe import TransE
from repro.embeddings.trainer import EmbeddingTrainer, EmbeddingTrainingConfig
from repro.kg.graph import NO_OP_RELATION, is_inverse_relation


EXPECTED_BASELINES = {"MTRL", "MINERVA", "RLH", "FIRE", "GAATs", "NeuralLP"}


class TestRegistry:
    def test_all_paper_baselines_registered(self):
        assert EXPECTED_BASELINES <= set(available_baselines())

    def test_get_baseline_returns_runner(self):
        runner = get_baseline("MTRL")
        assert runner.name == "MTRL"

    def test_unknown_baseline_raises(self):
        with pytest.raises(KeyError):
            get_baseline("NotAModel")

    def test_registry_classes_have_names(self):
        for name, cls in BASELINE_REGISTRY.items():
            assert cls.name == name


class TestForwardRelations:
    def test_excludes_inverse_and_no_op(self, tiny_dataset):
        graph = tiny_dataset.graph
        relations = forward_relations(graph)
        for relation in relations:
            name = graph.relations.symbol(relation)
            assert name != NO_OP_RELATION
            assert not is_inverse_relation(name)


class TestMultiModalTransE:
    def test_entity_vectors_concatenate_modalities(self, tiny_dataset):
        multimodal = np.concatenate(
            [tiny_dataset.mkg.text_matrix(), tiny_dataset.mkg.image_matrix()], axis=1
        )
        model = MultiModalTransE(
            tiny_dataset.train_graph,
            multimodal_features=multimodal,
            structural_dim=8,
            multimodal_dim=4,
            rng=0,
        )
        assert model.entity_embeddings.shape == (tiny_dataset.graph.num_entities, 12)

    def test_training_reduces_loss(self, tiny_dataset):
        multimodal = np.concatenate(
            [tiny_dataset.mkg.text_matrix(), tiny_dataset.mkg.image_matrix()], axis=1
        )
        model = MultiModalTransE(
            tiny_dataset.train_graph,
            multimodal_features=multimodal,
            structural_dim=8,
            multimodal_dim=4,
            rng=0,
        )
        trainer = EmbeddingTrainer(
            model, EmbeddingTrainingConfig(epochs=15, batch_size=16, learning_rate=0.1), rng=0
        )
        result = trainer.fit(tiny_dataset.splits.train)
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_feature_row_mismatch_raises(self, tiny_dataset):
        with pytest.raises(ValueError):
            MultiModalTransE(
                tiny_dataset.train_graph, multimodal_features=np.zeros((3, 5)), rng=0
            )


class TestRuleReasoner:
    def test_mines_composition_rule(self, tiny_graph):
        reasoner = RuleReasoner(tiny_graph, max_rule_length=2, min_support=1, min_confidence=0.1)
        lives_in = tiny_graph.relation_id("lives_in")
        rules = reasoner.mine([lives_in])[lives_in]
        assert rules, "expected at least one rule for lives_in"
        works = tiny_graph.relation_id("works_for")
        located = tiny_graph.relation_id("located_in")
        assert any(rule.body == (works, located) for rule in rules)

    def test_rule_application_scores_correct_tail(self, tiny_graph):
        reasoner = RuleReasoner(tiny_graph, max_rule_length=2, min_support=1, min_confidence=0.1)
        lives_in = tiny_graph.relation_id("lives_in")
        reasoner.mine([lives_in])
        alice = tiny_graph.entity_id("alice")
        berlin = tiny_graph.entity_id("berlin")
        scores = reasoner.score_tails(alice, lives_in)
        assert scores[berlin] == scores.max()
        assert reasoner.score_triple(alice, lives_in, berlin) > 0

    def test_invalid_rule_length(self, tiny_graph):
        with pytest.raises(ValueError):
            RuleReasoner(tiny_graph, max_rule_length=0)


class TestGAATsPropagation:
    def test_propagation_preserves_shapes_and_norms(self, tiny_dataset):
        transe = TransE(tiny_dataset.train_graph, embedding_dim=8, rng=0)
        model = AttenuatedAttentionModel(tiny_dataset.train_graph, transe, rounds=1)
        assert model.entity_embeddings.shape == transe.entity_embeddings.shape
        norms = np.linalg.norm(model.entity_embeddings, axis=1)
        np.testing.assert_allclose(norms, np.ones_like(norms), atol=1e-6)

    def test_invalid_parameters(self, tiny_dataset):
        transe = TransE(tiny_dataset.train_graph, embedding_dim=8, rng=0)
        with pytest.raises(ValueError):
            AttenuatedAttentionModel(tiny_dataset.train_graph, transe, rounds=0)
        with pytest.raises(ValueError):
            AttenuatedAttentionModel(tiny_dataset.train_graph, transe, mixing=2.0)

    def test_train_step_not_supported(self, tiny_dataset):
        transe = TransE(tiny_dataset.train_graph, embedding_dim=8, rng=0)
        model = AttenuatedAttentionModel(tiny_dataset.train_graph, transe)
        with pytest.raises(NotImplementedError):
            model.train_step([], [], 0.1)


@pytest.mark.parametrize("name", sorted(EXPECTED_BASELINES))
def test_every_baseline_runs_end_to_end(name, tiny_dataset, tiny_preset):
    """Smoke test: each baseline trains and reports the standard metrics."""
    result = run_baseline(name, tiny_dataset, preset=tiny_preset, rng=0)
    assert result.name == name
    assert set(result.entity_metrics) == {"mrr", "hits@1", "hits@5", "hits@10"}
    assert 0.0 <= result.entity_metrics["mrr"] <= 1.0


def test_baseline_relation_map_evaluation(tiny_dataset, tiny_preset):
    result = run_baseline("MTRL", tiny_dataset, preset=tiny_preset, evaluate_relations=True, rng=0)
    assert "overall" in result.relation_metrics
    assert 0.0 <= result.relation_metrics["overall"] <= 1.0
