"""Tests for the TransAE single-hop multi-modal baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.registry import available_baselines, run_baseline
from repro.baselines.transae import TransAE, TransAEBaseline
from repro.kg.sampling import NegativeSampler


@pytest.fixture
def multimodal_features(tiny_dataset):
    return np.concatenate(
        [tiny_dataset.mkg.text_matrix(), tiny_dataset.mkg.image_matrix()], axis=1
    )


class TestTransAEModel:
    def test_score_tails_matches_score_triple(self, tiny_dataset, multimodal_features):
        model = TransAE(
            tiny_dataset.train_graph, multimodal_features, embedding_dim=8, rng=0
        )
        triple = tiny_dataset.splits.train[0]
        tails = model.score_tails(triple.head, triple.relation)
        assert tails.shape == (tiny_dataset.graph.num_entities,)
        assert tails[triple.tail] == pytest.approx(
            model.score_triple(triple.head, triple.relation, triple.tail)
        )

    def test_scores_are_negative_distances(self, tiny_dataset, multimodal_features):
        model = TransAE(
            tiny_dataset.train_graph, multimodal_features, embedding_dim=8, rng=0
        )
        triple = tiny_dataset.splits.train[0]
        assert model.score_triple(triple.head, triple.relation, triple.tail) <= 0.0

    def test_feature_row_count_validated(self, tiny_dataset, multimodal_features):
        with pytest.raises(ValueError):
            TransAE(tiny_dataset.train_graph, multimodal_features[:-1], embedding_dim=8)

    def test_training_improves_margin_objective(self, tiny_dataset, multimodal_features):
        graph = tiny_dataset.train_graph
        model = TransAE(graph, multimodal_features, embedding_dim=8, rng=0)
        sampler = NegativeSampler(graph, rng=0)
        triples = tiny_dataset.splits.train
        losses = []
        for _ in range(10):
            negatives = [sampler.corrupt(t) for t in triples]
            losses.append(model.train_step(triples, negatives, lr=0.05))
        assert losses[-1] <= losses[0]

    def test_reconstruction_error_decreases_with_training(
        self, tiny_dataset, multimodal_features
    ):
        graph = tiny_dataset.train_graph
        model = TransAE(
            graph, multimodal_features, embedding_dim=8, reconstruction_weight=1.0, rng=0
        )
        sampler = NegativeSampler(graph, rng=0)
        triples = tiny_dataset.splits.train
        before = model.reconstruction_error()
        for _ in range(10):
            negatives = [sampler.corrupt(t) for t in triples]
            model.train_step(triples, negatives, lr=0.05)
        assert model.reconstruction_error() <= before

    def test_entity_embeddings_are_encoded_features(self, tiny_dataset, multimodal_features):
        model = TransAE(
            tiny_dataset.train_graph, multimodal_features, embedding_dim=8, rng=0
        )
        embeddings = model.entity_embeddings
        assert embeddings.shape == (tiny_dataset.graph.num_entities, 8)
        np.testing.assert_allclose(embeddings[3], model.encode(3))


class TestTransAEBaseline:
    def test_registered(self):
        assert "TransAE" in available_baselines()

    def test_run_reports_metrics(self, tiny_dataset, tiny_preset):
        result = run_baseline("TransAE", tiny_dataset, preset=tiny_preset, rng=0)
        assert result.name == "TransAE"
        assert set(result.entity_metrics) == {"mrr", "hits@1", "hits@5", "hits@10"}
        assert 0.0 <= result.entity_metrics["mrr"] <= 1.0
        assert "reconstruction_error" in result.extras

    def test_relation_metrics_on_request(self, tiny_dataset, tiny_preset):
        result = TransAEBaseline().run(
            tiny_dataset, preset=tiny_preset, evaluate_relations=True, rng=0
        )
        assert "overall" in result.relation_metrics
        assert 0.0 <= result.relation_metrics["overall"] <= 1.0
