"""The benchmark-regression guard's comparison logic, incl. lower-is-better metrics."""

from __future__ import annotations

import importlib.util
from pathlib import Path

GUARD_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", GUARD_PATH)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def baseline(**metrics) -> dict:
    return {"tolerance_pct": 10, "metrics": metrics}


class TestHigherIsBetter:
    def test_within_tolerance_is_ok(self):
        regressions, missing, ok = check_regression.check(
            baseline(speedup={"value": 2.0}), {"speedup": 1.85}
        )
        assert not regressions and not missing and len(ok) == 1

    def test_below_floor_regresses(self):
        regressions, _, _ = check_regression.check(
            baseline(speedup={"value": 2.0}), {"speedup": 1.7}
        )
        assert len(regressions) == 1 and "below" in regressions[0]

    def test_missing_metric_reported(self):
        _, missing, _ = check_regression.check(baseline(speedup={"value": 2.0}), {})
        assert len(missing) == 1


class TestLowerIsBetter:
    def test_under_ceiling_is_ok(self):
        regressions, _, ok = check_regression.check(
            baseline(p99={"value": 100.0, "direction": "lower"}), {"p99": 105.0}
        )
        assert not regressions and len(ok) == 1 and "ceiling" in ok[0]

    def test_above_ceiling_regresses(self):
        regressions, _, _ = check_regression.check(
            baseline(p99={"value": 100.0, "direction": "lower"}), {"p99": 111.0}
        )
        assert len(regressions) == 1 and "above" in regressions[0]

    def test_improvement_never_regresses(self):
        regressions, _, _ = check_regression.check(
            baseline(p99={"value": 100.0, "direction": "lower"}), {"p99": 5.0}
        )
        assert not regressions

    def test_mixed_directions_checked_independently(self):
        regressions, _, ok = check_regression.check(
            baseline(
                speedup={"value": 2.0},
                p99={"value": 100.0, "direction": "lower"},
            ),
            {"speedup": 2.5, "p99": 250.0},
        )
        assert len(ok) == 1 and len(regressions) == 1
        assert "p99" in regressions[0]
