"""Tests for ranking metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.metrics import (
    RankingResult,
    average_precision,
    hits_at_k,
    mean_average_precision,
    mean_reciprocal_rank,
    rank_of_target,
    summarize_results,
)


class TestMRR:
    def test_perfect_ranking(self):
        assert mean_reciprocal_rank([1, 1, 1]) == pytest.approx(1.0)

    def test_known_value(self):
        assert mean_reciprocal_rank([1, 2, 4]) == pytest.approx((1 + 0.5 + 0.25) / 3)

    def test_empty_returns_zero(self):
        assert mean_reciprocal_rank([]) == 0.0

    def test_invalid_rank_raises(self):
        with pytest.raises(ValueError):
            mean_reciprocal_rank([0])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=30))
    def test_bounded_between_zero_and_one(self, ranks):
        assert 0.0 < mean_reciprocal_rank(ranks) <= 1.0


class TestHits:
    def test_hits_at_1(self):
        assert hits_at_k([1, 2, 3], 1) == pytest.approx(1 / 3)

    def test_hits_at_10(self):
        assert hits_at_k([1, 2, 30], 10) == pytest.approx(2 / 3)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            hits_at_k([1], 0)

    def test_empty(self):
        assert hits_at_k([], 5) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=30))
    def test_monotone_in_k(self, ranks):
        assert hits_at_k(ranks, 1) <= hits_at_k(ranks, 5) <= hits_at_k(ranks, 10)


class TestAveragePrecision:
    def test_all_relevant(self):
        assert average_precision([1, 1, 1]) == pytest.approx(1.0)

    def test_single_relevant_at_position_k(self):
        assert average_precision([0, 0, 1]) == pytest.approx(1 / 3)

    def test_no_relevant(self):
        assert average_precision([0, 0, 0]) == 0.0

    def test_known_mixed_case(self):
        # relevant at positions 1 and 3: AP = (1/1 + 2/3) / 2
        assert average_precision([1, 0, 1]) == pytest.approx((1.0 + 2 / 3) / 2)

    def test_map_averages(self):
        value = mean_average_precision([[1], [0, 1]])
        assert value == pytest.approx((1.0 + 0.5) / 2)

    def test_map_empty(self):
        assert mean_average_precision([]) == 0.0


class TestRankOfTarget:
    def test_best_score_is_rank_one(self):
        assert rank_of_target(np.array([0.9, 0.1, 0.5]), 0) == 1

    def test_pessimistic_tie_breaking(self):
        assert rank_of_target(np.array([0.5, 0.5, 0.1]), 0) == 2

    def test_worst_score(self):
        assert rank_of_target(np.array([0.9, 0.8, 0.1]), 2) == 3

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            rank_of_target(np.array([1.0]), 5)


class TestRankingResult:
    def test_summary_keys(self):
        result = RankingResult()
        result.extend([1, 2, 3])
        summary = result.summary()
        assert set(summary) == {"mrr", "hits@1", "hits@5", "hits@10"}

    def test_add_validates(self):
        with pytest.raises(ValueError):
            RankingResult().add(0)

    def test_merge(self):
        a = RankingResult([1, 2])
        b = RankingResult([3])
        assert len(a.merge(b)) == 3

    def test_len(self):
        assert len(RankingResult([1, 1, 1])) == 3

    def test_summarize_results(self):
        out = summarize_results({"model": RankingResult([1, 2])})
        assert "model" in out and "mrr" in out["model"]
