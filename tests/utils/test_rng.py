"""Tests for RNG helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import choice_without_replacement, new_rng, spawn_rngs, stable_hash


def test_new_rng_from_int_is_deterministic():
    assert new_rng(7).integers(0, 1000) == new_rng(7).integers(0, 1000)


def test_new_rng_passthrough():
    generator = np.random.default_rng(0)
    assert new_rng(generator) is generator


def test_spawn_rngs_independent_and_deterministic():
    children_a = spawn_rngs(5, 3)
    children_b = spawn_rngs(5, 3)
    draws_a = [c.integers(0, 10**6) for c in children_a]
    draws_b = [c.integers(0, 10**6) for c in children_b]
    assert draws_a == draws_b
    assert len(set(draws_a)) > 1


def test_spawn_rngs_negative_count_raises():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_choice_without_replacement_returns_all_when_small():
    assert sorted(choice_without_replacement(new_rng(0), [1, 2, 3], 10)) == [1, 2, 3]


def test_choice_without_replacement_distinct():
    chosen = choice_without_replacement(new_rng(0), list(range(100)), 10)
    assert len(chosen) == len(set(chosen)) == 10


def test_stable_hash_is_stable():
    assert stable_hash("entity_42") == stable_hash("entity_42")
    assert stable_hash("entity_42") != stable_hash("entity_43")


def test_stable_hash_modulus():
    assert 0 <= stable_hash("anything", modulus=97) < 97
