"""Property-based tests for the ranking metrics.

These complement the example-based tests in ``test_metrics.py`` with
invariants that must hold for *any* input: metric ranges, monotonicity of
Hits@k in k, and consistency between score-based ranking and rank-based
metrics.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.metrics import (
    RankingResult,
    average_precision,
    hits_at_k,
    mean_average_precision,
    mean_reciprocal_rank,
    rank_of_target,
)

ranks_strategy = st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=50)


class TestRankMetricsProperties:
    @given(ranks_strategy)
    @settings(max_examples=60, deadline=None)
    def test_mrr_bounded(self, ranks):
        mrr = mean_reciprocal_rank(ranks)
        assert 0.0 < mrr <= 1.0
        if all(rank == 1 for rank in ranks):
            assert mrr == pytest.approx(1.0)

    @given(ranks_strategy, st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_hits_monotonic_in_k(self, ranks, k):
        assert hits_at_k(ranks, k) <= hits_at_k(ranks, k + 1)
        assert 0.0 <= hits_at_k(ranks, k) <= 1.0

    @given(ranks_strategy)
    @settings(max_examples=60, deadline=None)
    def test_mrr_at_least_hits1_over_max_rank(self, ranks):
        # 1/rank >= 1{rank==1}/1 weighted: MRR is always >= Hits@1 * 1.0 / 1,
        # in fact MRR >= Hits@1 because each rank-1 query contributes 1.0.
        assert mean_reciprocal_rank(ranks) >= hits_at_k(ranks, 1) - 1e-12

    @given(ranks_strategy)
    @settings(max_examples=60, deadline=None)
    def test_ranking_result_summary_matches_functions(self, ranks):
        result = RankingResult()
        result.extend(ranks)
        summary = result.summary(hits_at=(1, 5))
        assert summary["mrr"] == pytest.approx(mean_reciprocal_rank(ranks))
        assert summary["hits@5"] == pytest.approx(hits_at_k(ranks, 5))


class TestAveragePrecisionProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_bounded(self, relevance):
        ap = average_precision(relevance)
        assert 0.0 <= ap <= 1.0
        if not any(relevance):
            assert ap == 0.0

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=19))
    @settings(max_examples=60, deadline=None)
    def test_single_relevant_item_is_reciprocal_rank(self, length, position):
        position = min(position, length - 1)
        relevance = [0] * length
        relevance[position] = 1
        assert average_precision(relevance) == pytest.approx(1.0 / (position + 1))

    def test_map_over_queries_is_mean(self):
        queries = [[1, 0], [0, 1]]
        assert mean_average_precision(queries) == pytest.approx((1.0 + 0.5) / 2)


class TestRankOfTargetProperties:
    @given(
        st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=30),
        st.integers(min_value=0, max_value=29),
    )
    @settings(max_examples=60, deadline=None)
    def test_rank_in_valid_range(self, scores, index):
        index = min(index, len(scores) - 1)
        rank = rank_of_target(np.array(scores), index)
        assert 1 <= rank <= len(scores)

    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=30, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_best_unique_score_has_rank_one(self, scores):
        best = int(np.argmax(scores))
        assert rank_of_target(np.array(scores), best) == 1

    def test_pessimistic_tie_breaking(self):
        scores = np.array([0.5, 0.5, 0.1])
        assert rank_of_target(scores, 0) == 2
        assert rank_of_target(scores, 1) == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            rank_of_target(np.array([0.1]), 5)
