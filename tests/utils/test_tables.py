"""Tests for ASCII table rendering."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_comparison, format_table


def test_format_table_basic_layout():
    text = format_table(["model", "mrr"], [["MMKGR", 0.801], ["RLH", 0.624]], title="Table III")
    lines = text.splitlines()
    assert lines[0] == "Table III"
    assert "model" in lines[1] and "mrr" in lines[1]
    assert "MMKGR" in lines[3]
    assert "0.801" in lines[3]


def test_format_table_handles_none():
    text = format_table(["a"], [[None]])
    assert "-" in text.splitlines()[-1]


def test_format_table_precision():
    text = format_table(["x"], [[0.123456]], precision=2)
    assert "0.12" in text


def test_format_table_mismatched_row_raises():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_format_comparison_includes_reference_rows():
    text = format_comparison(
        ["hits@1"],
        measured={"MMKGR": [0.25]},
        reference={"MMKGR": [73.6]},
    )
    assert "MMKGR (paper)" in text
    assert "73.6" in text


def test_format_comparison_skips_missing_reference():
    text = format_comparison(["hits@1"], measured={"NEW": [0.1]}, reference={})
    assert "NEW" in text and "(paper)" not in text
