"""Tests for the synthetic image encoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.image import SyntheticImageEncoder


@pytest.fixture()
def encoder() -> SyntheticImageEncoder:
    return SyntheticImageEncoder(
        latent_dim=8, feature_dim=16, informativeness=0.9, irrelevant_dim=4, rng=0
    )


def test_output_shape(encoder, rng):
    feature = encoder.encode(0, rng.normal(size=8))
    assert feature.shape == (16,)


def test_signal_dim(encoder):
    assert encoder.signal_dim == 12


def test_deterministic_per_entity(encoder, rng):
    latent = rng.normal(size=8)
    np.testing.assert_allclose(encoder.encode(3, latent), encoder.encode(3, latent))


def test_different_entities_differ(encoder, rng):
    latent = rng.normal(size=8)
    assert not np.allclose(encoder.encode(1, latent), encoder.encode(2, latent))


def test_wrong_latent_shape_raises(encoder):
    with pytest.raises(ValueError):
        encoder.encode(0, np.zeros(5))


def test_invalid_configuration():
    with pytest.raises(ValueError):
        SyntheticImageEncoder(latent_dim=0, feature_dim=8)
    with pytest.raises(ValueError):
        SyntheticImageEncoder(latent_dim=4, feature_dim=8, informativeness=2.0)
    with pytest.raises(ValueError):
        SyntheticImageEncoder(latent_dim=4, feature_dim=8, irrelevant_dim=8)


def test_encode_matrix_shape(encoder, rng):
    latents = rng.normal(size=(5, 8))
    assert encoder.encode_matrix(latents).shape == (5, 16)


def test_informativeness_controls_signal(rng):
    """Higher informativeness -> image features track latent similarity better."""
    latents = rng.normal(size=(30, 8))
    informative = SyntheticImageEncoder(8, 16, informativeness=1.0, irrelevant_dim=0, rng=0)
    noisy = SyntheticImageEncoder(8, 16, informativeness=0.0, irrelevant_dim=0, rng=0)

    def alignment(encoder):
        features = encoder.encode_matrix(latents)
        latent_dist = np.linalg.norm(latents[:, None] - latents[None, :], axis=-1).ravel()
        feature_dist = np.linalg.norm(features[:, None] - features[None, :], axis=-1).ravel()
        return np.corrcoef(latent_dist, feature_dist)[0, 1]

    assert alignment(informative) > alignment(noisy)


def test_irrelevant_dims_are_shared_background(encoder, rng):
    """The irrelevant channels are nearly identical across entities (background noise)."""
    a = encoder.encode(0, rng.normal(size=8))
    b = encoder.encode(1, rng.normal(size=8))
    signal_diff = np.abs(a[:12] - b[:12]).mean()
    background_diff = np.abs(a[12:] - b[12:]).mean()
    assert background_diff < signal_diff
