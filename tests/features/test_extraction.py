"""Tests for the feature store and modality configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.extraction import FeatureStore, ModalityConfig


class TestModalityConfig:
    def test_labels(self):
        assert ModalityConfig.full().label == "structure+image+text"
        assert ModalityConfig.structure_only().label == "structure-only"
        assert ModalityConfig.no_image().label == "structure+text"
        assert ModalityConfig.no_text().label == "structure+image"

    def test_factories_set_flags(self):
        assert not ModalityConfig.no_image().use_image
        assert not ModalityConfig.no_text().use_text
        assert not ModalityConfig.structure_only().use_image


class TestFeatureStore:
    def test_dimensions(self, tiny_dataset):
        store = FeatureStore(tiny_dataset.mkg, structural_dim=8)
        assert store.entity_embeddings.shape == (tiny_dataset.mkg.num_entities, 8)
        assert store.image_dim == tiny_dataset.mkg.image_dim
        assert store.text_dim == tiny_dataset.mkg.text_dim
        assert store.auxiliary_dim == store.image_dim + store.text_dim

    def test_invalid_structural_dim(self, tiny_dataset):
        with pytest.raises(ValueError):
            FeatureStore(tiny_dataset.mkg, structural_dim=0)

    def test_set_structural_embeddings(self, tiny_dataset):
        store = FeatureStore(tiny_dataset.mkg, structural_dim=8)
        entities = np.ones((tiny_dataset.mkg.num_entities, 8))
        relations = np.ones((tiny_dataset.mkg.num_relations, 8))
        store.set_structural_embeddings(entities, relations)
        assert store.has_pretrained_structure
        np.testing.assert_allclose(store.entity_embedding(0), np.ones(8))

    def test_set_structural_embeddings_bad_shape(self, tiny_dataset):
        store = FeatureStore(tiny_dataset.mkg, structural_dim=8)
        with pytest.raises(ValueError):
            store.set_structural_embeddings(np.ones((3, 8)), np.ones((3, 8)))

    def test_modality_switch_zeroes_features(self, tiny_dataset):
        store = FeatureStore(
            tiny_dataset.mkg, structural_dim=8, modalities=ModalityConfig.structure_only()
        )
        np.testing.assert_allclose(store.image_feature(0), np.zeros(store.image_dim))
        np.testing.assert_allclose(store.text_feature(0), np.zeros(store.text_dim))

    def test_full_modalities_return_real_features(self, tiny_dataset):
        store = FeatureStore(tiny_dataset.mkg, structural_dim=8)
        assert np.abs(store.image_feature(0)).sum() > 0
        assert np.abs(store.text_feature(0)).sum() > 0

    def test_auxiliary_concatenation_order(self, tiny_dataset):
        store = FeatureStore(tiny_dataset.mkg, structural_dim=8)
        auxiliary = store.auxiliary_features(1)
        np.testing.assert_allclose(auxiliary[: store.text_dim], store.text_feature(1))
        np.testing.assert_allclose(auxiliary[store.text_dim :], store.image_feature(1))

    def test_with_modalities_shares_embeddings(self, tiny_dataset):
        store = FeatureStore(tiny_dataset.mkg, structural_dim=8)
        restricted = store.with_modalities(ModalityConfig.no_text())
        assert restricted.entity_embeddings is store.entity_embeddings
        np.testing.assert_allclose(restricted.text_feature(0), np.zeros(store.text_dim))
        assert np.abs(restricted.image_feature(0)).sum() > 0
