"""Tests for the text feature encoder and description generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.text import TextFeatureEncoder, describe_entity, tokenize


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello World_1!") == ["hello", "world_1"]

    def test_empty(self):
        assert tokenize("...") == []


class TestDescribeEntity:
    def test_mentions_entity_and_neighbors(self):
        text = describe_entity("db/titanic", 0, ["db/james_cameron", "db/kate_winslet"])
        assert "titanic" in text
        assert "james cameron" in text

    def test_handles_no_neighbors(self):
        text = describe_entity("db/solo", 1, [])
        assert "itself" in text

    def test_deterministic(self):
        assert describe_entity("e", 2, ["n"]) == describe_entity("e", 2, ["n"])

    def test_type_changes_template(self):
        assert describe_entity("e", 0, ["n"]) != describe_entity("e", 3, ["n"])


class TestTextFeatureEncoder:
    corpus = [
        "the movie titanic stars kate winslet and leonardo dicaprio",
        "james cameron directed the movie titanic",
        "kate winslet is an english actress known for period dramas",
        "leonardo dicaprio is an american actor and film producer",
        "the ship sank in the atlantic ocean",
    ]

    def test_fit_transform_shape(self):
        encoder = TextFeatureEncoder(feature_dim=6, rng=0)
        features = encoder.fit_transform(self.corpus)
        assert features.shape == (5, 6)

    def test_transform_requires_fit(self):
        with pytest.raises(RuntimeError):
            TextFeatureEncoder(feature_dim=4).transform(["hello"])

    def test_related_documents_are_closer(self):
        encoder = TextFeatureEncoder(feature_dim=8, rng=0)
        features = encoder.fit_transform(self.corpus)
        titanic_pair = np.linalg.norm(features[0] - features[1])
        unrelated_pair = np.linalg.norm(features[0] - features[4])
        assert titanic_pair < unrelated_pair

    def test_unknown_words_give_zero_vector(self):
        encoder = TextFeatureEncoder(feature_dim=4, rng=0)
        encoder.fit(self.corpus)
        features = encoder.transform(["zzzz qqqq"])
        np.testing.assert_allclose(features, np.zeros((1, 4)))

    def test_word_vector_lookup(self):
        encoder = TextFeatureEncoder(feature_dim=4, rng=0)
        encoder.fit(self.corpus)
        assert encoder.word_vector("titanic").shape == (4,)
        with pytest.raises(KeyError):
            encoder.word_vector("nonexistentword")

    def test_vocabulary_size(self):
        encoder = TextFeatureEncoder(feature_dim=4, rng=0)
        encoder.fit(["a b c", "a b"])
        assert encoder.vocabulary_size == 3

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            TextFeatureEncoder(feature_dim=4).fit(["", "..."])

    def test_latent_mixing_controls_dependence_on_corpus(self, rng):
        """informativeness=1.0 makes features depend only on the latents, 0.0 only on text."""
        latents = rng.normal(size=(5, 6))
        other_corpus = [doc.replace("titanic", "avatar") for doc in self.corpus]

        def features(corpus, informativeness):
            encoder = TextFeatureEncoder(feature_dim=6, rng=np.random.default_rng(0))
            return encoder.fit_transform(corpus, latents=latents, informativeness=informativeness)

        # Pure latent mixing: corpus content is irrelevant.
        np.testing.assert_allclose(
            features(self.corpus, 1.0), features(other_corpus, 1.0), atol=1e-9
        )
        # Pure text features: corpus content matters.
        assert not np.allclose(features(self.corpus, 0.0), features(other_corpus, 0.0))

    def test_invalid_informativeness(self, rng):
        encoder = TextFeatureEncoder(feature_dim=4, rng=0)
        with pytest.raises(ValueError):
            encoder.fit_transform(self.corpus, latents=rng.normal(size=(5, 3)), informativeness=1.5)

    def test_latent_row_mismatch_raises(self, rng):
        encoder = TextFeatureEncoder(feature_dim=4, rng=0)
        with pytest.raises(ValueError):
            encoder.fit_transform(self.corpus, latents=rng.normal(size=(3, 3)), informativeness=0.5)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            TextFeatureEncoder(feature_dim=0)
        with pytest.raises(ValueError):
            TextFeatureEncoder(feature_dim=4, window=0)
