"""Tests for the RESCAL and HolE embedding models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings.hole import HolE, circular_convolution, circular_correlation
from repro.embeddings.rescal import RESCAL
from repro.embeddings.trainer import EmbeddingTrainer, EmbeddingTrainingConfig
from repro.kg.sampling import NegativeSampler


@pytest.fixture(params=[RESCAL, HolE], ids=["RESCAL", "HolE"])
def model(request, tiny_graph):
    return request.param(tiny_graph, embedding_dim=8, rng=0)


class TestScoringConsistency:
    def test_score_tails_matches_score_triple(self, model, tiny_graph):
        triple = tiny_graph.triples()[0]
        tails = model.score_tails(triple.head, triple.relation)
        assert tails.shape == (tiny_graph.num_entities,)
        assert tails[triple.tail] == pytest.approx(
            model.score_triple(triple.head, triple.relation, triple.tail)
        )

    def test_score_heads_matches_score_triple(self, model, tiny_graph):
        triple = tiny_graph.triples()[0]
        heads = model.score_heads(triple.relation, triple.tail)
        assert heads.shape == (tiny_graph.num_entities,)
        assert heads[triple.head] == pytest.approx(
            model.score_triple(triple.head, triple.relation, triple.tail)
        )

    def test_probability_in_unit_interval(self, model, tiny_graph):
        triple = tiny_graph.triples()[0]
        probability = model.probability(triple.head, triple.relation, triple.tail)
        assert 0.0 < probability < 1.0

    def test_embedding_shapes(self, model, tiny_graph):
        assert model.entity_embeddings.shape[0] == tiny_graph.num_entities
        assert model.relation_embeddings.shape[0] == tiny_graph.num_relations


class TestTraining:
    def _train(self, model, tiny_graph, epochs=15):
        sampler = NegativeSampler(tiny_graph, rng=0)
        triples = tiny_graph.triples()
        losses = []
        for _ in range(epochs):
            negatives = [sampler.corrupt(t) for t in triples]
            losses.append(model.train_step(triples, negatives, lr=0.1))
        return losses

    def test_training_reduces_loss(self, model, tiny_graph):
        losses = self._train(model, tiny_graph)
        assert losses[-1] < losses[0]

    def test_training_separates_positive_and_corrupted(self, model, tiny_graph):
        self._train(model, tiny_graph, epochs=25)
        sampler = NegativeSampler(tiny_graph, rng=1)
        positives, corrupted = [], []
        for triple in tiny_graph.triples():
            negative = sampler.corrupt(triple)
            positives.append(model.score_triple(triple.head, triple.relation, triple.tail))
            corrupted.append(model.score_triple(negative.head, negative.relation, negative.tail))
        assert np.mean(positives) > np.mean(corrupted)

    def test_embedding_trainer_integration(self, model, tiny_graph):
        trainer = EmbeddingTrainer(
            model, EmbeddingTrainingConfig(epochs=3, batch_size=8, learning_rate=0.1), rng=0
        )
        result = trainer.fit(tiny_graph.triples())
        assert len(result.epoch_losses) == 3
        assert np.isfinite(result.final_loss)


class TestRescalSpecifics:
    def test_relation_matrix_shape(self, tiny_graph):
        model = RESCAL(tiny_graph, embedding_dim=6, rng=0)
        matrix = model.relation_matrix(0)
        assert matrix.shape == (6, 6)
        assert model.relation_embeddings.shape == (tiny_graph.num_relations, 36)

    def test_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            RESCAL(tiny_graph, embedding_dim=0)


class TestCircularOperators:
    @given(
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_fft_correlation_matches_direct_sum(self, dim, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=dim)
        b = rng.normal(size=dim)
        direct = np.array(
            [sum(a[i] * b[(i + k) % dim] for i in range(dim)) for k in range(dim)]
        )
        np.testing.assert_allclose(circular_correlation(a, b), direct, atol=1e-9)

    @given(
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_fft_convolution_matches_direct_sum(self, dim, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=dim)
        b = rng.normal(size=dim)
        direct = np.array(
            [sum(a[i] * b[(k - i) % dim] for i in range(dim)) for k in range(dim)]
        )
        np.testing.assert_allclose(circular_convolution(a, b), direct, atol=1e-9)

    def test_hole_gradient_identities(self, tiny_graph):
        """The analytic gradients used by HolE match finite differences."""
        model = HolE(tiny_graph, embedding_dim=6, rng=3)
        triple = tiny_graph.triples()[0]
        h = model.entity_embeddings[triple.head].copy()
        r = model.relation_embeddings[triple.relation].copy()
        t = model.entity_embeddings[triple.tail].copy()

        def score(hv, rv, tv):
            return float(np.dot(rv, circular_correlation(hv, tv)))

        eps = 1e-6
        for index in range(6):
            bump = np.zeros(6)
            bump[index] = eps
            grad_h = (score(h + bump, r, t) - score(h - bump, r, t)) / (2 * eps)
            grad_t = (score(h, r, t + bump) - score(h, r, t - bump)) / (2 * eps)
            grad_r = (score(h, r + bump, t) - score(h, r - bump, t)) / (2 * eps)
            assert grad_h == pytest.approx(circular_correlation(r, t)[index], abs=1e-5)
            assert grad_t == pytest.approx(circular_convolution(h, r)[index], abs=1e-5)
            assert grad_r == pytest.approx(circular_correlation(h, t)[index], abs=1e-5)
