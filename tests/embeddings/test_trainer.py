"""Tests for the embedding trainer and its configuration."""

from __future__ import annotations

import pytest

from repro.embeddings import EmbeddingTrainer, EmbeddingTrainingConfig, TransE


def test_config_validation():
    with pytest.raises(ValueError):
        EmbeddingTrainingConfig(epochs=0)
    with pytest.raises(ValueError):
        EmbeddingTrainingConfig(batch_size=0)
    with pytest.raises(ValueError):
        EmbeddingTrainingConfig(learning_rate=0.0)
    with pytest.raises(ValueError):
        EmbeddingTrainingConfig(lr_decay=0.0)


def test_fit_records_one_loss_per_epoch(tiny_graph):
    model = TransE(tiny_graph, embedding_dim=8, rng=0)
    trainer = EmbeddingTrainer(model, EmbeddingTrainingConfig(epochs=4, batch_size=8), rng=0)
    result = trainer.fit()
    assert len(result.epoch_losses) == 4
    assert result.final_loss == result.epoch_losses[-1]


def test_fit_on_subset_of_triples(tiny_graph):
    model = TransE(tiny_graph, embedding_dim=8, rng=0)
    trainer = EmbeddingTrainer(model, EmbeddingTrainingConfig(epochs=2, batch_size=4), rng=0)
    result = trainer.fit(tiny_graph.triples()[:4])
    assert len(result.epoch_losses) == 2


def test_fit_empty_triples_raises(tiny_graph):
    model = TransE(tiny_graph, embedding_dim=8, rng=0)
    trainer = EmbeddingTrainer(model, rng=0)
    with pytest.raises(ValueError):
        trainer.fit([])
