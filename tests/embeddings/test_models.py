"""Tests for DistMult, ComplEx, and ConvE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings import ComplEx, ConvE, DistMult, EmbeddingTrainer, EmbeddingTrainingConfig


@pytest.fixture(params=["distmult", "complex"])
def bilinear_model(request, tiny_graph):
    if request.param == "distmult":
        return DistMult(tiny_graph, embedding_dim=16, rng=0)
    return ComplEx(tiny_graph, embedding_dim=8, rng=0)


class TestBilinearModels:
    def test_training_reduces_loss(self, bilinear_model):
        trainer = EmbeddingTrainer(
            bilinear_model,
            EmbeddingTrainingConfig(epochs=20, batch_size=8, learning_rate=0.2),
            rng=0,
        )
        result = trainer.fit()
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_score_tails_consistent_with_score_triple(self, bilinear_model, tiny_graph):
        triple = tiny_graph.triples()[0]
        scores = bilinear_model.score_tails(triple.head, triple.relation)
        assert scores[triple.tail] == pytest.approx(
            bilinear_model.score_triple(triple.head, triple.relation, triple.tail), rel=1e-6
        )

    def test_embedding_shapes(self, bilinear_model, tiny_graph):
        assert bilinear_model.entity_embeddings.shape[0] == tiny_graph.num_entities
        assert bilinear_model.relation_embeddings.shape[0] == tiny_graph.num_relations

    def test_true_triples_beat_random_corruptions(self, bilinear_model, tiny_graph):
        trainer = EmbeddingTrainer(
            bilinear_model,
            EmbeddingTrainingConfig(epochs=30, batch_size=8, learning_rate=0.2),
            rng=0,
        )
        trainer.fit()
        rng = np.random.default_rng(0)
        wins = 0
        trials = 40
        triples = tiny_graph.triples()
        for _ in range(trials):
            triple = triples[rng.integers(len(triples))]
            corrupt = int(rng.integers(tiny_graph.num_entities))
            while tiny_graph.contains(triple.head, triple.relation, corrupt):
                corrupt = int(rng.integers(tiny_graph.num_entities))
            true_score = bilinear_model.score_triple(triple.head, triple.relation, triple.tail)
            fake_score = bilinear_model.score_triple(triple.head, triple.relation, corrupt)
            wins += int(true_score > fake_score)
        assert wins / trials > 0.6


class TestConvE:
    def test_score_shapes(self, tiny_graph):
        model = ConvE(tiny_graph, embedding_dim=16, rng=0)
        scores = model.score_tails(0, 1)
        assert scores.shape == (tiny_graph.num_entities,)

    def test_probability_in_unit_interval(self, tiny_graph):
        model = ConvE(tiny_graph, embedding_dim=16, rng=0)
        assert 0.0 <= model.probability(0, 1, 2) <= 1.0

    def test_training_reduces_bce(self, tiny_graph):
        model = ConvE(tiny_graph, embedding_dim=16, rng=0)
        triples = tiny_graph.triples()
        first = model.train_step(triples, [], lr=5e-3)
        for _ in range(10):
            last = model.train_step(triples, [], lr=5e-3)
        assert last < first

    def test_trained_scorer_prefers_true_tails(self, tiny_graph):
        model = ConvE(tiny_graph, embedding_dim=16, rng=0)
        triples = tiny_graph.triples()
        for _ in range(15):
            model.train_step(triples, [], lr=5e-3)
        triple = triples[0]
        scores = model.score_tails(triple.head, triple.relation)
        true_tails = tiny_graph.tails_for(triple.head, triple.relation)
        best_true = max(scores[t] for t in true_tails)
        assert best_true >= np.median(scores)

    def test_embedding_dim_too_small_for_kernel_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            ConvE(tiny_graph, embedding_dim=2, kernel_size=5, rng=0)
