"""Tests for TransE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings import EmbeddingTrainer, EmbeddingTrainingConfig, TransE
from repro.embeddings.evaluation import evaluate_embedding_model


@pytest.fixture()
def trained_transe(tiny_graph):
    model = TransE(tiny_graph, embedding_dim=16, rng=0)
    trainer = EmbeddingTrainer(
        model, EmbeddingTrainingConfig(epochs=30, batch_size=8, learning_rate=0.1), rng=0
    )
    trainer.fit()
    return model


def test_embeddings_shapes(tiny_graph):
    model = TransE(tiny_graph, embedding_dim=12, rng=0)
    assert model.entity_embeddings.shape == (tiny_graph.num_entities, 12)
    assert model.relation_embeddings.shape == (tiny_graph.num_relations, 12)


def test_entities_stay_normalised(trained_transe):
    norms = np.linalg.norm(trained_transe.entity_embeddings, axis=1)
    np.testing.assert_allclose(norms, np.ones_like(norms), atol=1e-6)


def test_training_reduces_loss(tiny_graph):
    model = TransE(tiny_graph, embedding_dim=16, rng=0)
    trainer = EmbeddingTrainer(
        model, EmbeddingTrainingConfig(epochs=25, batch_size=8, learning_rate=0.1), rng=0
    )
    result = trainer.fit()
    assert result.epoch_losses[-1] < result.epoch_losses[0]


def test_true_triples_score_higher_than_corruptions(trained_transe, tiny_graph):
    wins = 0
    total = 0
    for triple in tiny_graph.triples():
        true_score = trained_transe.score_triple(triple.head, triple.relation, triple.tail)
        for corrupt_tail in range(tiny_graph.num_entities):
            if tiny_graph.contains(triple.head, triple.relation, corrupt_tail):
                continue
            total += 1
            if true_score > trained_transe.score_triple(triple.head, triple.relation, corrupt_tail):
                wins += 1
    assert wins / total > 0.7


def test_score_tails_matches_score_triple(trained_transe, tiny_graph):
    triple = tiny_graph.triples()[0]
    scores = trained_transe.score_tails(triple.head, triple.relation)
    assert scores[triple.tail] == pytest.approx(
        trained_transe.score_triple(triple.head, triple.relation, triple.tail)
    )


def test_score_heads_matches_score_triple(trained_transe, tiny_graph):
    triple = tiny_graph.triples()[0]
    scores = trained_transe.score_heads(triple.relation, triple.tail)
    assert scores[triple.head] == pytest.approx(
        trained_transe.score_triple(triple.head, triple.relation, triple.tail)
    )


def test_probability_in_unit_interval(trained_transe):
    assert 0.0 <= trained_transe.probability(0, 1, 2) <= 1.0


def test_invalid_margin(tiny_graph):
    with pytest.raises(ValueError):
        TransE(tiny_graph, margin=0.0)


def test_evaluation_protocol_returns_metrics(trained_transe, tiny_graph):
    metrics = evaluate_embedding_model(trained_transe, tiny_graph.triples()[:5])
    assert set(metrics) == {"mrr", "hits@1", "hits@5", "hits@10"}
    assert 0.0 <= metrics["mrr"] <= 1.0
