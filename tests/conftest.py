"""Shared fixtures: tiny graphs, datasets, and presets sized for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import (
    EvaluationConfig,
    ExperimentPreset,
    MMKGRConfig,
)
from repro.embeddings.trainer import EmbeddingTrainingConfig
from repro.kg.datasets import SyntheticMKGConfig, build_dataset
from repro.kg.graph import KnowledgeGraph, Triple
from repro.rl.imitation import ImitationConfig
from repro.rl.reinforce import ReinforceConfig
from repro.rl.rewards import RewardConfig


@pytest.fixture(scope="session")
def tiny_graph() -> KnowledgeGraph:
    """A hand-built graph with an obvious 2-hop composition.

    ``works_for`` composed with ``located_in`` implies ``lives_in``:
    alice -works_for-> acme -located_in-> berlin, and (alice, lives_in, berlin)
    is a fact, so a 2-hop path explains it.
    """
    graph = KnowledgeGraph()
    facts = [
        ("alice", "works_for", "acme"),
        ("bob", "works_for", "acme"),
        ("carol", "works_for", "globex"),
        ("acme", "located_in", "berlin"),
        ("globex", "located_in", "paris"),
        ("alice", "lives_in", "berlin"),
        ("bob", "lives_in", "berlin"),
        ("carol", "lives_in", "paris"),
        ("berlin", "in_country", "germany"),
        ("paris", "in_country", "france"),
        ("alice", "friend_of", "bob"),
        ("bob", "friend_of", "carol"),
    ]
    for head, relation, tail in facts:
        graph.add_triple_by_name(head, relation, tail)
    return graph


@pytest.fixture(scope="session")
def tiny_dataset_config() -> SyntheticMKGConfig:
    return SyntheticMKGConfig(
        name="tiny-mkg",
        num_entities=40,
        num_base_relations=4,
        num_composed_relations=2,
        avg_degree=3.0,
        latent_dim=8,
        image_dim=12,
        text_dim=10,
        images_per_entity=3,
        modality_informativeness=0.85,
        irrelevant_noise_dim=4,
        num_entity_types=3,
        seed=5,
    )


@pytest.fixture(scope="session")
def tiny_dataset(tiny_dataset_config):
    return build_dataset(tiny_dataset_config)


@pytest.fixture(scope="session")
def tiny_preset() -> ExperimentPreset:
    """A preset small enough for per-test training runs."""
    return ExperimentPreset(
        name="test",
        model=MMKGRConfig(
            structural_dim=8,
            history_dim=8,
            auxiliary_dim=8,
            attention_dim=8,
            joint_dim=8,
            policy_hidden_dim=16,
            max_steps=3,
            max_actions=16,
            seed=3,
        ),
        reward=RewardConfig(),
        reinforce=ReinforceConfig(epochs=1, batch_size=32, learning_rate=3e-3),
        imitation=ImitationConfig(epochs=2, batch_size=16, learning_rate=8e-3),
        embedding=EmbeddingTrainingConfig(epochs=5, batch_size=32, learning_rate=0.1),
        evaluation=EvaluationConfig(beam_width=4, max_queries=10),
        dataset_scale=0.2,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
