"""Tests for preset/dataset-config serialisation and pipeline checkpoints."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.checkpoint import (
    checkpoint_exists,
    checkpoint_summary,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.config import fast_preset, paper_preset
from repro.core.config_io import (
    dataset_config_from_dict,
    dataset_config_to_dict,
    load_dataset_config,
    load_preset,
    preset_from_dict,
    preset_to_dict,
    save_dataset_config,
    save_preset,
)
from repro.core.trainer import MMKGRPipeline
from repro.features.extraction import ModalityConfig
from repro.fusion.variants import FusionVariant
from repro.kg.datasets import build_dataset


class TestPresetSerialisation:
    @pytest.mark.parametrize("factory", [fast_preset, paper_preset])
    def test_round_trip_preserves_every_field(self, factory):
        preset = factory()
        rebuilt = preset_from_dict(preset_to_dict(preset))
        assert rebuilt == preset

    def test_payload_is_json_serialisable(self):
        payload = preset_to_dict(fast_preset())
        assert json.loads(json.dumps(payload)) == payload

    def test_fusion_variant_round_trips_as_string(self):
        preset = fast_preset()
        preset = preset.with_overrides(
            model=type(preset.model)(
                **{**preset_to_dict(preset)["model"], "fusion_variant": "concatenation"}
            )
        )
        payload = preset_to_dict(preset)
        assert payload["model"]["fusion_variant"] == "concatenation"
        assert preset_from_dict(payload).model.fusion_variant is FusionVariant.CONCATENATION

    def test_save_and_load_file(self, tmp_path):
        preset = fast_preset()
        path = save_preset(preset, tmp_path / "preset.json")
        assert load_preset(path) == preset


class TestDatasetConfigSerialisation:
    def test_round_trip(self, tiny_dataset_config):
        payload = dataset_config_to_dict(tiny_dataset_config)
        assert dataset_config_from_dict(payload) == tiny_dataset_config

    def test_save_and_load_file(self, tiny_dataset_config, tmp_path):
        path = save_dataset_config(tiny_dataset_config, tmp_path / "dataset.json")
        assert load_dataset_config(path) == tiny_dataset_config

    def test_rebuilt_config_generates_identical_graph(self, tiny_dataset_config):
        payload = dataset_config_to_dict(tiny_dataset_config)
        original = build_dataset(tiny_dataset_config)
        rebuilt = build_dataset(dataset_config_from_dict(payload))
        assert original.graph.num_triples == rebuilt.graph.num_triples
        assert [t.as_tuple() for t in original.splits.test] == [
            t.as_tuple() for t in rebuilt.splits.test
        ]


class TestCheckpoint:
    @pytest.fixture(scope="class")
    def built_pipeline(self, request):
        dataset = request.getfixturevalue("tiny_dataset")
        preset = request.getfixturevalue("tiny_preset")
        pipeline = MMKGRPipeline(dataset, preset=preset, modalities=ModalityConfig.full())
        pipeline.build()
        return pipeline

    def test_save_requires_built_pipeline(self, tiny_dataset, tiny_preset, tmp_path):
        pipeline = MMKGRPipeline(tiny_dataset, preset=tiny_preset)
        with pytest.raises(RuntimeError):
            save_checkpoint(pipeline, tmp_path / "ckpt")

    def test_save_creates_expected_files(self, built_pipeline, tmp_path):
        directory = save_checkpoint(built_pipeline, tmp_path / "ckpt")
        assert checkpoint_exists(directory)
        summary = checkpoint_summary(directory)
        assert summary["reward_scheme"] == "3d"
        assert summary["format_version"] == 1

    def test_load_restores_agent_parameters(self, built_pipeline, tmp_path):
        directory = save_checkpoint(built_pipeline, tmp_path / "ckpt")
        restored = load_checkpoint(directory)
        original_state = built_pipeline.agent.state_dict()
        restored_state = restored.agent.state_dict()
        assert set(original_state) == set(restored_state)
        for key in original_state:
            np.testing.assert_allclose(original_state[key], restored_state[key])

    def test_load_restores_structural_embeddings(self, built_pipeline, tmp_path):
        directory = save_checkpoint(built_pipeline, tmp_path / "ckpt")
        restored = load_checkpoint(directory)
        np.testing.assert_allclose(
            built_pipeline.features.entity_embeddings,
            restored.features.entity_embeddings,
        )

    def test_restored_pipeline_evaluates_identically(self, built_pipeline, tmp_path):
        directory = save_checkpoint(built_pipeline, tmp_path / "ckpt")
        restored = load_checkpoint(directory)
        triples = built_pipeline.dataset.splits.test[:5]
        original_metrics = built_pipeline.evaluate(triples)
        restored_metrics = restored.evaluate(triples)
        assert original_metrics == pytest.approx(restored_metrics)

    def test_load_rejects_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "missing")

    def test_load_rejects_unknown_version(self, built_pipeline, tmp_path):
        directory = save_checkpoint(built_pipeline, tmp_path / "ckpt")
        manifest_path = directory / "checkpoint.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            load_checkpoint(directory)

    def test_checkpoint_summary_absent(self, tmp_path):
        assert checkpoint_summary(tmp_path) is None
        assert not checkpoint_exists(tmp_path)
