"""Tests for the training pipeline, ablation factory, and experiment runner."""

from __future__ import annotations

import pytest

from repro.core.ablations import AblationName, build_ablation_pipeline
from repro.core.experiment import ExperimentRunner
from repro.core.results import PAPER_TABLE3, PAPER_TABLE5, table3_reference_rows
from repro.core.trainer import MMKGRPipeline
from repro.features.extraction import ModalityConfig
from repro.fusion.variants import FusionVariant
from repro.rl.rewards import CompositeReward, ZeroOneReward


class TestPipeline:
    def test_invalid_arguments(self, tiny_dataset, tiny_preset):
        with pytest.raises(ValueError):
            MMKGRPipeline(tiny_dataset, preset=tiny_preset, reward_scheme="bogus")
        with pytest.raises(ValueError):
            MMKGRPipeline(tiny_dataset, preset=tiny_preset, shaping_scorer="bogus")

    def test_build_assembles_components(self, tiny_dataset, tiny_preset):
        pipeline = MMKGRPipeline(tiny_dataset, preset=tiny_preset)
        agent = pipeline.build()
        assert pipeline.features.has_pretrained_structure
        assert pipeline.environment.max_steps == tiny_preset.model.max_steps
        assert isinstance(pipeline.reward, CompositeReward)
        assert agent is pipeline.agent

    def test_zero_one_reward_scheme(self, tiny_dataset, tiny_preset):
        pipeline = MMKGRPipeline(
            tiny_dataset, preset=tiny_preset, reward_scheme="zero_one", shaping_scorer="none"
        )
        pipeline.build()
        assert isinstance(pipeline.reward, ZeroOneReward)

    def test_evaluate_before_training_raises(self, tiny_dataset, tiny_preset):
        pipeline = MMKGRPipeline(tiny_dataset, preset=tiny_preset)
        with pytest.raises(RuntimeError):
            pipeline.evaluate()
        with pytest.raises(RuntimeError):
            pipeline.hop_distribution()

    def test_full_run_produces_metrics_and_history(self, tiny_dataset, tiny_preset):
        pipeline = MMKGRPipeline(tiny_dataset, preset=tiny_preset)
        result = pipeline.run()
        assert set(result.entity_metrics) == {"mrr", "hits@1", "hits@5", "hits@10"}
        assert len(result.training_history.epoch_rewards) == tiny_preset.reinforce.epochs
        assert 0.0 <= result.mrr <= 1.0
        assert 0.0 <= result.hits(1) <= 1.0

    def test_hop_distribution_after_training(self, tiny_dataset, tiny_preset):
        pipeline = MMKGRPipeline(tiny_dataset, preset=tiny_preset)
        pipeline.train()
        distribution = pipeline.hop_distribution(max_hops=3)
        assert set(distribution) == {"1_hops", "2_hops", "3_hops", "success_count"}


class TestAblations:
    @pytest.mark.parametrize(
        "name, expectation",
        [
            (AblationName.OSKGR, "structure-only"),
            (AblationName.STKGR, "structure+text"),
            (AblationName.SIKGR, "structure+image"),
            (AblationName.MMKGR, "structure+image+text"),
        ],
    )
    def test_modality_ablations_configure_feature_store(
        self, tiny_dataset, tiny_preset, name, expectation
    ):
        pipeline = build_ablation_pipeline(tiny_dataset, name, preset=tiny_preset)
        assert pipeline.modalities.label == expectation

    def test_fusion_ablations_set_variant(self, tiny_dataset, tiny_preset):
        fakgr = build_ablation_pipeline(tiny_dataset, AblationName.FAKGR, preset=tiny_preset)
        fgkgr = build_ablation_pipeline(tiny_dataset, AblationName.FGKGR, preset=tiny_preset)
        assert fakgr.preset.model.fusion_variant is FusionVariant.NO_FILTRATION
        assert fgkgr.preset.model.fusion_variant is FusionVariant.NO_ATTENTION

    def test_reward_ablations_set_reward_config(self, tiny_dataset, tiny_preset):
        dekgr = build_ablation_pipeline(tiny_dataset, AblationName.DEKGR, preset=tiny_preset)
        dskgr = build_ablation_pipeline(tiny_dataset, AblationName.DSKGR, preset=tiny_preset)
        dvkgr = build_ablation_pipeline(tiny_dataset, AblationName.DVKGR, preset=tiny_preset)
        zokgr = build_ablation_pipeline(tiny_dataset, AblationName.ZOKGR, preset=tiny_preset)
        assert not dekgr.preset.reward.use_distance and not dekgr.preset.reward.use_diversity
        assert dskgr.preset.reward.use_distance and not dskgr.preset.reward.use_diversity
        assert dvkgr.preset.reward.use_diversity and not dvkgr.preset.reward.use_distance
        assert zokgr.reward_scheme == "zero_one"

    def test_ablation_accepts_string_names(self, tiny_dataset, tiny_preset):
        pipeline = build_ablation_pipeline(tiny_dataset, "OSKGR", preset=tiny_preset)
        assert pipeline.modalities == ModalityConfig.structure_only()

    def test_unknown_ablation_raises(self, tiny_dataset, tiny_preset):
        with pytest.raises(ValueError):
            build_ablation_pipeline(tiny_dataset, "NOPE", preset=tiny_preset)

    def test_oskgr_run_produces_metrics(self, tiny_dataset, tiny_preset):
        result = build_ablation_pipeline(
            tiny_dataset, AblationName.OSKGR, preset=tiny_preset
        ).run()
        assert 0.0 <= result.entity_metrics["hits@1"] <= 1.0


class TestExperimentRunner:
    def test_dataset_cache(self, tiny_preset):
        runner = ExperimentRunner(dataset_names=("wn9-img-txt",), preset=tiny_preset)
        first = runner.dataset("wn9-img-txt")
        assert runner.dataset("wn9-img-txt") is first

    def test_table2_rows(self, tiny_preset):
        runner = ExperimentRunner(dataset_names=("wn9-img-txt",), preset=tiny_preset)
        rows = runner.table2_statistics()
        assert len(rows) == 1
        assert rows[0][1] > 0  # entity count

    def test_reference_tables_are_consistent(self):
        assert set(PAPER_TABLE3) == {"wn9-img-txt", "fb-img-txt"}
        assert set(PAPER_TABLE5["wn9-img-txt"]) == {"OSKGR", "STKGR", "SIKGR", "MMKGR"}
        rows = table3_reference_rows("wn9-img-txt")
        assert any(row[0] == "MMKGR" for row in rows)
        # MMKGR dominates every baseline in the published numbers.
        mmkgr = PAPER_TABLE3["wn9-img-txt"]["MMKGR"]
        for model, values in PAPER_TABLE3["wn9-img-txt"].items():
            if model != "MMKGR":
                assert mmkgr[0] > values[0]
