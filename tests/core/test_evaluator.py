"""Scalar-vs-vectorized evaluation parity and the ranking-determinism fixes.

The vectorized evaluation engine must be an optimisation, not a protocol
change: under the same seed, ``EvaluationConfig(vectorized=True)`` and
``vectorized=False`` have to return byte-identical metric dictionaries for
every protocol (entity MRR/Hits, relation MAP, hop distribution) — for MMKGR
(fast-path batched scoring), for a baseline the engine drives through
per-branch slow-path scoring (RLH), and for protocol-only agents that fall
back to the scalar loop entirely.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import EvaluationConfig
from repro.core.evaluator import (
    beam_search_results,
    evaluate_entity_prediction,
    evaluate_relation_prediction,
    hop_distribution,
)
from repro.core.trainer import MMKGRPipeline
from repro.kg.graph import KnowledgeGraph
from repro.rl.environment import MKGEnvironment, Query
from repro.serve.engine import BatchBeamSearch


@pytest.fixture(scope="module")
def trained_pipeline(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    tiny_preset = request.getfixturevalue("tiny_preset")
    pipeline = MMKGRPipeline(tiny_dataset, preset=tiny_preset, rng=3)
    pipeline.train()
    return tiny_dataset, pipeline


def _configs(beam_width: int = 4, **kwargs):
    vectorized = EvaluationConfig(beam_width=beam_width, vectorized=True, **kwargs)
    scalar = replace(vectorized, vectorized=False)
    return vectorized, scalar


class TestScalarVectorizedParity:
    def test_entity_metrics_identical(self, trained_pipeline):
        dataset, pipeline = trained_pipeline
        vectorized, scalar = _configs()
        results = [
            evaluate_entity_prediction(
                pipeline.agent,
                pipeline.environment,
                dataset.splits.test,
                filter_graph=dataset.graph,
                config=config,
                rng=7,
            )
            for config in (vectorized, scalar)
        ]
        assert results[0] == results[1]

    def test_relation_metrics_identical(self, trained_pipeline):
        dataset, pipeline = trained_pipeline
        vectorized, scalar = _configs()
        results = [
            evaluate_relation_prediction(
                pipeline.agent,
                pipeline.environment,
                dataset.splits.test[:6],
                config=config,
                rng=7,
            )
            for config in (vectorized, scalar)
        ]
        assert results[0] == results[1]
        assert "overall" in results[0]

    def test_hop_distribution_identical(self, trained_pipeline):
        dataset, pipeline = trained_pipeline
        vectorized, scalar = _configs()
        results = [
            hop_distribution(
                pipeline.agent,
                pipeline.environment,
                dataset.splits.test,
                filter_graph=dataset.graph,
                config=config,
                rng=7,
            )
            for config in (vectorized, scalar)
        ]
        assert results[0] == results[1]

    def test_parity_survives_chunked_batches(self, trained_pipeline):
        # Chunking the lockstep engine must not change any ranking: a
        # batch_size smaller than the query count exercises the chunk loop.
        dataset, pipeline = trained_pipeline
        vectorized, scalar = _configs(batch_size=3)
        results = [
            evaluate_entity_prediction(
                pipeline.agent,
                pipeline.environment,
                dataset.splits.test,
                filter_graph=dataset.graph,
                config=config,
                rng=7,
            )
            for config in (vectorized, scalar)
        ]
        assert results[0] == results[1]

    def test_subsampling_draws_identical_queries(self, trained_pipeline):
        # max_queries subsampling happens before the path split, so both
        # paths must evaluate the same subset under the same rng.
        dataset, pipeline = trained_pipeline
        vectorized, scalar = _configs(max_queries=5)
        results = [
            evaluate_entity_prediction(
                pipeline.agent,
                pipeline.environment,
                dataset.splits.test,
                filter_graph=dataset.graph,
                config=config,
                rng=11,
            )
            for config in (vectorized, scalar)
        ]
        assert results[0] == results[1]


class TestBaselineParity:
    @pytest.fixture(scope="class")
    def rlh_reasoner(self, request):
        from repro.baselines.registry import fit_baseline

        tiny_dataset = request.getfixturevalue("tiny_dataset")
        tiny_preset = request.getfixturevalue("tiny_preset")
        return tiny_dataset, fit_baseline("RLH", tiny_dataset, preset=tiny_preset, rng=3)

    def test_rlh_agent_is_batchable_via_slow_path(self, rlh_reasoner):
        _, reasoner = rlh_reasoner
        # RLH overrides action_log_probs, so the engine scores its branches
        # through the agent — but it still advances in lockstep.
        assert BatchBeamSearch.supports(reasoner.pipeline.agent)

    def test_rlh_entity_metrics_identical(self, rlh_reasoner):
        dataset, reasoner = rlh_reasoner
        vectorized, scalar = _configs()
        results = [
            reasoner.entity_metrics(
                dataset.splits.test, filter_graph=dataset.graph, config=config, rng=7
            )
            for config in (vectorized, scalar)
        ]
        assert results[0] == results[1]

    def test_rlh_relation_metrics_identical(self, rlh_reasoner):
        dataset, reasoner = rlh_reasoner
        vectorized, scalar = _configs()
        results = [
            reasoner.relation_metrics(dataset.splits.test[:4], config=config, rng=7)
            for config in (vectorized, scalar)
        ]
        assert results[0] == results[1]


class _UniformAgent:
    """A protocol-only agent the batch engine cannot drive (no MMKGR innards)."""

    def begin_episode(self, query) -> None:
        pass

    def observe_step(self, relation: int, entity: int) -> None:
        pass

    def action_log_probs(self, state, actions):
        from repro.nn.tensor import Tensor

        return Tensor(np.full(len(actions), -np.log(len(actions))))

    def action_probabilities(self, state, actions) -> np.ndarray:
        return np.full(len(actions), 1.0 / len(actions))

    def snapshot(self):
        return None

    def restore(self, snapshot) -> None:
        pass


class TestScalarFallback:
    def test_engine_rejects_protocol_only_agent(self):
        assert not BatchBeamSearch.supports(_UniformAgent())

    def test_vectorized_config_falls_back_to_scalar(self, trained_pipeline):
        # A non-batchable agent must evaluate through the scalar loop even
        # with vectorized=True — same metrics, no crash.
        dataset, pipeline = trained_pipeline
        agent = _UniformAgent()
        vectorized, scalar = _configs()
        results = [
            evaluate_entity_prediction(
                agent,
                pipeline.environment,
                dataset.splits.test[:6],
                filter_graph=dataset.graph,
                config=config,
                rng=7,
            )
            for config in (vectorized, scalar)
        ]
        assert results[0] == results[1]

    def test_beam_search_results_order_and_length(self, trained_pipeline):
        dataset, pipeline = trained_pipeline
        queries = [
            Query(t.head, t.relation, t.tail) for t in dataset.splits.test[:5]
        ]
        vectorized, scalar = _configs()
        fast = beam_search_results(
            pipeline.agent, pipeline.environment, queries, vectorized
        )
        slow = beam_search_results(
            pipeline.agent, pipeline.environment, queries, scalar
        )
        assert len(fast) == len(slow) == len(queries)
        for query, fast_result, slow_result in zip(queries, fast, slow):
            assert fast_result.query == query
            # Raw log-probs may differ at float-noise level between the
            # batched and per-row BLAS paths; the ranking (what every metric
            # consumes) must match exactly.
            fast_ranked = fast_result.ranked_entities()
            slow_ranked = slow_result.ranked_entities()
            assert [e for e, _ in fast_ranked] == [e for e, _ in slow_ranked]
            np.testing.assert_allclose(
                [score for _, score in fast_ranked],
                [score for _, score in slow_ranked],
                rtol=1e-9,
            )
            assert fast_result.entity_hops == slow_result.entity_hops


class TestRelationRankingDeterminism:
    def test_map_independent_of_candidate_order(self, trained_pipeline):
        # Ties (every relation whose beam misses the tail scores -inf) used
        # to be broken by candidate iteration order; they must now rank by
        # ascending relation id regardless of how candidates are listed.
        dataset, pipeline = trained_pipeline
        candidates = list(range(min(6, dataset.graph.num_relations)))
        vectorized, _ = _configs()
        forward = evaluate_relation_prediction(
            pipeline.agent,
            pipeline.environment,
            dataset.splits.test[:5],
            candidate_relations=candidates,
            config=vectorized,
            rng=7,
        )
        backward = evaluate_relation_prediction(
            pipeline.agent,
            pipeline.environment,
            dataset.splits.test[:5],
            candidate_relations=list(reversed(candidates)),
            config=vectorized,
            rng=7,
        )
        assert forward == backward


class TestHopDistributionFilteredProtocol:
    @pytest.fixture()
    def duplicate_answer_setup(self):
        """A graph where (head, relation) has two correct tails.

        With a uniform policy the beam reaches both answers with identical
        scores, so the deterministic tie-break top-ranks the *other* correct
        answer (lower entity id) for the query asking about the second one.
        """
        # No no-op self-loop: it would put the (lower-id) source entity into
        # the tie pool and obscure the duplicate-answer scenario under test.
        graph = KnowledgeGraph(add_no_op=False)
        graph.add_triple_by_name("h", "r", "t1")
        graph.add_triple_by_name("h", "r", "t2")
        graph.add_triple_by_name("x", "r", "t1")
        environment = MKGEnvironment(graph, max_steps=1, mask_answer_edge=False)
        return graph, environment

    def test_success_matches_filtered_hits_at_1(self, duplicate_answer_setup):
        graph, environment = duplicate_answer_setup
        agent = _UniformAgent()
        t2 = graph.entities.index("t2")
        triple = next(t for t in graph.triples() if t.tail == t2)
        config = EvaluationConfig(beam_width=4, hits_at=(1,))

        metrics = evaluate_entity_prediction(
            agent, environment, [triple], filter_graph=graph, config=config
        )
        distribution = hop_distribution(
            agent, environment, [triple], filter_graph=graph, config=config
        )
        # Both correct tails tie, t1 (lower id) ranks first unfiltered — yet
        # the query counts as solved under the filtered protocol, and the
        # hop distribution must agree with Table III's Hits@1 on that.
        assert metrics["hits@1"] == 1.0
        assert distribution["success_count"] == 1.0
        assert distribution["1_hops"] == 1.0

    def test_unreached_answer_never_counts_as_solved(self, duplicate_answer_setup):
        # With beam_width=1 the uniform beam keeps a single branch, so one of
        # the two answers goes unreached.  Filtering the reached duplicate
        # empties the candidate list, and rank_of's expected-rank convention
        # then yields rank 1 for the *unreached* answer on this tiny graph —
        # but a query without a real path must not enter the hop counts.
        graph, environment = duplicate_answer_setup
        agent = _UniformAgent()
        t1 = graph.entities.index("t1")
        t2 = graph.entities.index("t2")
        config = EvaluationConfig(beam_width=1)
        unreached = None
        for triple in graph.triples():
            if triple.tail not in (t1, t2):
                continue
            (search,) = beam_search_results(
                agent,
                environment,
                [Query(triple.head, triple.relation, triple.tail)],
                config,
            )
            if triple.tail not in search.entity_log_probs:
                other = t1 if triple.tail == t2 else t2
                assert search.rank_of(triple.tail, filtered_out={other}) == 1
                unreached = triple
        assert unreached is not None, "expected one answer to fall off the beam"
        distribution = hop_distribution(
            agent, environment, [unreached], filter_graph=graph, config=config
        )
        assert distribution["success_count"] == 0.0

    def test_unfiltered_best_entity_would_have_missed_it(self, duplicate_answer_setup):
        graph, environment = duplicate_answer_setup
        agent = _UniformAgent()
        t1 = graph.entities.index("t1")
        t2 = graph.entities.index("t2")
        triple = next(t for t in graph.triples() if t.tail == t2)
        config = EvaluationConfig(beam_width=4)
        (search,) = beam_search_results(
            agent,
            environment,
            [Query(triple.head, triple.relation, triple.tail)],
            config,
        )
        # Pin the scenario: the unfiltered top-1 is the duplicate answer, so
        # the old success definition (best_entity() == tail) under-counted.
        assert search.best_entity() == t1
        assert search.best_entity() != t2
        assert search.rank_of(t2, filtered_out={t1}) == 1
