"""Tests for the MMKGR agent and the evaluation protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EvaluationConfig, MMKGRConfig
from repro.core.evaluator import (
    evaluate_entity_prediction,
    evaluate_relation_prediction,
    hop_distribution,
)
from repro.core.model import MMKGRAgent
from repro.features.extraction import FeatureStore, ModalityConfig
from repro.fusion.variants import FusionVariant
from repro.rl.environment import MKGEnvironment, Query


@pytest.fixture(scope="module")
def agent_env(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    features = FeatureStore(tiny_dataset.mkg, structural_dim=8, rng=np.random.default_rng(0))
    config = MMKGRConfig(
        structural_dim=8,
        history_dim=8,
        auxiliary_dim=8,
        attention_dim=8,
        joint_dim=8,
        policy_hidden_dim=16,
        max_steps=3,
        max_actions=16,
    )
    agent = MMKGRAgent(features, config=config, rng=0)
    environment = MKGEnvironment(tiny_dataset.train_graph, max_steps=3, max_actions=16)
    return tiny_dataset, agent, environment


class TestMMKGRAgent:
    def test_structural_dim_follows_feature_store(self, tiny_dataset):
        features = FeatureStore(tiny_dataset.mkg, structural_dim=8)
        agent = MMKGRAgent(features, config=MMKGRConfig(structural_dim=99), rng=0)
        assert agent.config.structural_dim == 8

    def test_action_log_probs_normalise(self, agent_env):
        dataset, agent, environment = agent_env
        triple = dataset.splits.train[0]
        query = Query(triple.head, triple.relation, triple.tail)
        state = environment.reset(query)
        agent.begin_episode(query)
        actions = environment.available_actions(state)
        log_probs = agent.action_log_probs(state, actions)
        assert log_probs.shape == (len(actions),)
        assert np.exp(log_probs.data).sum() == pytest.approx(1.0)

    def test_action_probabilities_have_no_graph(self, agent_env):
        dataset, agent, environment = agent_env
        triple = dataset.splits.train[0]
        query = Query(triple.head, triple.relation, triple.tail)
        state = environment.reset(query)
        agent.begin_episode(query)
        probs = agent.action_probabilities(state, environment.available_actions(state))
        assert isinstance(probs, np.ndarray)
        assert probs.sum() == pytest.approx(1.0)

    def test_observe_step_changes_distribution(self, agent_env):
        dataset, agent, environment = agent_env
        triple = dataset.splits.train[0]
        query = Query(triple.head, triple.relation, triple.tail)
        state = environment.reset(query)
        agent.begin_episode(query)
        actions = environment.available_actions(state)
        before = agent.action_probabilities(state, actions)
        relation, entity = actions[0]
        agent.observe_step(relation, entity)
        after = agent.action_probabilities(state, actions)
        assert not np.allclose(before, after)

    def test_snapshot_restore(self, agent_env):
        dataset, agent, environment = agent_env
        triple = dataset.splits.train[0]
        query = Query(triple.head, triple.relation, triple.tail)
        agent.begin_episode(query)
        snapshot = agent.snapshot()
        agent.observe_step(0, 0)
        agent.restore(snapshot)
        np.testing.assert_allclose(agent.history_encoder.hidden.data, snapshot[0].reshape(-1))

    def test_describe_mentions_variant_and_modalities(self, agent_env):
        _, agent, _ = agent_env
        description = agent.describe()
        assert "full" in description
        assert "structure+image+text" in description
        assert agent.fusion_variant is FusionVariant.FULL

    def test_parameters_cover_all_submodules(self, agent_env):
        _, agent, _ = agent_env
        names = {name.split(".")[0] for name, _ in agent.named_parameters()}
        assert {"history_encoder", "fuser", "policy"} <= names


class TestEvaluators:
    def test_entity_prediction_metrics(self, agent_env):
        dataset, agent, environment = agent_env
        metrics = evaluate_entity_prediction(
            agent,
            environment,
            dataset.splits.test[:8],
            filter_graph=dataset.graph,
            config=EvaluationConfig(beam_width=4),
        )
        assert set(metrics) == {"mrr", "hits@1", "hits@5", "hits@10"}
        assert 0.0 <= metrics["mrr"] <= 1.0
        assert metrics["hits@1"] <= metrics["hits@5"] <= metrics["hits@10"]

    def test_entity_prediction_respects_max_queries(self, agent_env):
        dataset, agent, environment = agent_env
        metrics = evaluate_entity_prediction(
            agent,
            environment,
            dataset.splits.test,
            config=EvaluationConfig(beam_width=2, max_queries=3),
            rng=0,
        )
        assert 0.0 <= metrics["mrr"] <= 1.0

    def test_relation_prediction_map(self, agent_env):
        dataset, agent, environment = agent_env
        metrics = evaluate_relation_prediction(
            agent,
            environment,
            dataset.splits.test[:3],
            config=EvaluationConfig(beam_width=2),
        )
        assert "overall" in metrics
        assert 0.0 <= metrics["overall"] <= 1.0

    def test_hop_distribution_sums_to_one_when_successful(self, agent_env):
        dataset, agent, environment = agent_env
        distribution = hop_distribution(
            agent,
            environment,
            dataset.splits.test[:10],
            config=EvaluationConfig(beam_width=4),
            max_hops=3,
        )
        proportions = [distribution[f"{h}_hops"] for h in range(1, 4)]
        if distribution["success_count"] > 0:
            assert sum(proportions) == pytest.approx(1.0)
        else:
            assert sum(proportions) == 0.0
