"""Tests for configuration objects and presets."""

from __future__ import annotations

import pytest

from repro.core.config import (
    EvaluationConfig,
    MMKGRConfig,
    fast_preset,
    paper_preset,
)
from repro.fusion.variants import FusionVariant


def test_mmkgr_config_validation():
    with pytest.raises(ValueError):
        MMKGRConfig(structural_dim=0)
    with pytest.raises(ValueError):
        MMKGRConfig(max_steps=0)


def test_fusion_variant_coercion_from_string():
    config = MMKGRConfig(fusion_variant="structure_only")
    assert config.fusion_variant is FusionVariant.STRUCTURE_ONLY


def test_evaluation_config_validation():
    with pytest.raises(ValueError):
        EvaluationConfig(beam_width=0)
    with pytest.raises(ValueError):
        EvaluationConfig(max_queries=0)


def test_paper_preset_matches_published_hyperparameters():
    preset = paper_preset()
    assert preset.model.max_steps == 4
    assert preset.reward.distance_threshold == 3
    assert preset.reward.bandwidth == pytest.approx(3.0)
    assert (
        preset.reward.lambda_destination,
        preset.reward.lambda_distance,
        preset.reward.lambda_diversity,
    ) == (0.1, 0.8, 0.1)
    assert preset.reinforce.batch_size == 128


def test_fast_preset_is_smaller_than_paper():
    fast = fast_preset()
    paper = paper_preset()
    assert fast.reinforce.epochs < paper.reinforce.epochs
    assert fast.dataset_scale < paper.dataset_scale
    assert fast.evaluation.beam_width < paper.evaluation.beam_width


def test_with_overrides_returns_modified_copy():
    preset = fast_preset()
    modified = preset.with_overrides(dataset_scale=0.1)
    assert modified.dataset_scale == 0.1
    assert preset.dataset_scale != 0.1
    assert modified.model is preset.model  # untouched fields are shared
