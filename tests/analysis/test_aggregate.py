"""Tests for multi-seed aggregation of metric dictionaries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.aggregate import (
    MetricSummary,
    aggregate_runs,
    compare_models,
    run_multi_seed,
)


class TestMetricSummary:
    def test_from_values_basic_statistics(self):
        summary = MetricSummary.from_values("mrr", [0.2, 0.4, 0.6])
        assert summary.mean == pytest.approx(0.4)
        assert summary.minimum == pytest.approx(0.2)
        assert summary.maximum == pytest.approx(0.6)
        assert summary.count == 3
        assert summary.std == pytest.approx(np.std([0.2, 0.4, 0.6], ddof=1))

    def test_single_value_has_zero_std(self):
        summary = MetricSummary.from_values("mrr", [0.5])
        assert summary.std == 0.0
        assert summary.count == 1

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            MetricSummary.from_values("mrr", [])

    def test_format_contains_mean_and_std(self):
        summary = MetricSummary.from_values("mrr", [0.25, 0.75])
        formatted = summary.format(2)
        assert "0.50" in formatted
        assert "±" in formatted

    def test_to_dict_keys(self):
        payload = MetricSummary.from_values("hits@1", [0.1, 0.2]).to_dict()
        assert set(payload) == {"mean", "std", "min", "max", "count"}

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_mean_bounded_by_min_and_max(self, values):
        summary = MetricSummary.from_values("metric", values)
        assert summary.minimum - 1e-9 <= summary.mean <= summary.maximum + 1e-9
        assert summary.std >= 0.0


class TestAggregateRuns:
    def test_aggregates_shared_metrics(self):
        runs = [{"mrr": 0.2, "hits@1": 0.1}, {"mrr": 0.4, "hits@1": 0.3}]
        summaries = aggregate_runs(runs)
        assert summaries["mrr"].mean == pytest.approx(0.3)
        assert summaries["hits@1"].count == 2

    def test_only_shared_metrics_by_default(self):
        runs = [{"mrr": 0.2, "hits@1": 0.1}, {"mrr": 0.4}]
        summaries = aggregate_runs(runs)
        assert "hits@1" not in summaries
        assert "mrr" in summaries

    def test_explicit_metric_selection(self):
        runs = [{"mrr": 0.2, "hits@1": 0.1}, {"mrr": 0.4, "hits@1": 0.3}]
        summaries = aggregate_runs(runs, metrics=["hits@1"])
        assert list(summaries) == ["hits@1"]

    def test_missing_metric_raises(self):
        with pytest.raises(KeyError):
            aggregate_runs([{"mrr": 0.2}], metrics=["hits@1"])

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([])


class TestRunMultiSeed:
    def test_factory_called_per_seed(self):
        calls = []

        def factory(seed):
            calls.append(seed)
            return {"mrr": seed / 10.0}

        summaries = run_multi_seed(factory, seeds=[1, 2, 3])
        assert calls == [1, 2, 3]
        assert summaries["mrr"].mean == pytest.approx(0.2)

    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_multi_seed(lambda seed: {"mrr": 0.1}, seeds=[])


class TestCompareModels:
    def test_rows_match_models(self):
        results = {
            "MMKGR": [{"mrr": 0.5, "hits@1": 0.4, "hits@5": 0.6, "hits@10": 0.7}],
            "MINERVA": [{"mrr": 0.3, "hits@1": 0.2, "hits@5": 0.4, "hits@10": 0.5}],
        }
        headers, rows = compare_models(results)
        assert headers[0] == "model"
        assert [row[0] for row in rows] == ["MMKGR", "MINERVA"]
        assert all(len(row) == len(headers) for row in rows)
