"""Tests for bootstrap confidence intervals and paired significance tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bootstrap import (
    bootstrap_confidence_interval,
    paired_bootstrap_test,
    sign_test,
)


class TestBootstrapConfidenceInterval:
    def test_constant_sample_has_zero_width(self):
        interval = bootstrap_confidence_interval([0.5] * 20, rng=0)
        assert interval.lower == pytest.approx(0.5)
        assert interval.upper == pytest.approx(0.5)
        assert interval.width == pytest.approx(0.0)
        assert interval.contains(0.5)

    def test_interval_contains_sample_mean(self):
        rng = np.random.default_rng(7)
        values = rng.normal(0.3, 0.1, size=200)
        interval = bootstrap_confidence_interval(values, rng=1)
        assert interval.lower <= interval.mean <= interval.upper

    def test_wider_confidence_gives_wider_interval(self):
        rng = np.random.default_rng(7)
        values = rng.normal(0.0, 1.0, size=100)
        narrow = bootstrap_confidence_interval(values, confidence=0.8, rng=2)
        wide = bootstrap_confidence_interval(values, confidence=0.99, rng=2)
        assert wide.width >= narrow.width

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([], rng=0)
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([0.1], confidence=1.5, rng=0)
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([0.1], num_samples=0, rng=0)

    def test_format_mentions_bounds(self):
        interval = bootstrap_confidence_interval([0.2, 0.4, 0.6], rng=0)
        formatted = interval.format(2)
        assert "[" in formatted and "]" in formatted

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_bounds_within_sample_range(self, values):
        interval = bootstrap_confidence_interval(values, num_samples=200, rng=3)
        assert min(values) - 1e-9 <= interval.lower
        assert interval.upper <= max(values) + 1e-9


class TestPairedBootstrapTest:
    def test_clear_advantage_is_significant(self):
        rng = np.random.default_rng(11)
        b = rng.uniform(0.0, 0.2, size=100)
        a = b + 0.3
        difference, p_value = paired_bootstrap_test(a, b, rng=4)
        assert difference == pytest.approx(0.3)
        assert p_value <= 0.01

    def test_identical_systems_not_significant(self):
        scores = np.linspace(0.0, 1.0, 50)
        difference, p_value = paired_bootstrap_test(scores, scores, rng=5)
        assert difference == pytest.approx(0.0)
        assert p_value >= 0.05

    def test_direction_handled_symmetrically(self):
        rng = np.random.default_rng(13)
        a = rng.uniform(0.0, 0.2, size=80)
        b = a + 0.3
        difference, p_value = paired_bootstrap_test(a, b, rng=6)
        assert difference == pytest.approx(-0.3)
        assert p_value <= 0.01

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap_test([0.1, 0.2], [0.1], rng=0)
        with pytest.raises(ValueError):
            paired_bootstrap_test([], [], rng=0)


class TestSignTest:
    def test_all_wins_is_significant(self):
        a = [1.0] * 12
        b = [0.0] * 12
        wins_a, wins_b, p_value = sign_test(a, b)
        assert wins_a == 12
        assert wins_b == 0
        assert p_value < 0.01

    def test_ties_only_gives_p_one(self):
        wins_a, wins_b, p_value = sign_test([0.5] * 10, [0.5] * 10)
        assert wins_a == wins_b == 0
        assert p_value == 1.0

    def test_balanced_split_not_significant(self):
        a = [1.0, 0.0] * 10
        b = [0.0, 1.0] * 10
        _, _, p_value = sign_test(a, b)
        assert p_value > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            sign_test([1.0], [1.0, 2.0])
