"""Tests for paired per-query comparison of reasoning agents."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.comparison import (
    ComparisonResult,
    compare_agents,
    compare_scores,
    per_query_reciprocal_ranks,
)
from repro.core.config import EvaluationConfig, MMKGRConfig
from repro.core.evaluator import evaluate_entity_prediction
from repro.core.model import MMKGRAgent
from repro.features.extraction import FeatureStore
from repro.rl.environment import MKGEnvironment


@pytest.fixture(scope="module")
def agents_and_environment(request):
    dataset = request.getfixturevalue("tiny_dataset")
    config = MMKGRConfig(
        structural_dim=8, history_dim=8, auxiliary_dim=8, attention_dim=8,
        joint_dim=8, policy_hidden_dim=16, max_steps=2, max_actions=8,
    )
    features = FeatureStore(dataset.mkg, structural_dim=8, rng=np.random.default_rng(0))
    agent_a = MMKGRAgent(features, config=config, rng=0)
    agent_b = MMKGRAgent(features, config=config, rng=99)
    environment = MKGEnvironment(dataset.train_graph, max_steps=2, max_actions=8)
    return dataset, agent_a, agent_b, environment


class TestPerQueryReciprocalRanks:
    def test_one_score_per_query_in_unit_interval(self, agents_and_environment):
        dataset, agent_a, _, environment = agents_and_environment
        triples = dataset.splits.test[:6]
        scores = per_query_reciprocal_ranks(
            agent_a, environment, triples, filter_graph=dataset.graph,
            config=EvaluationConfig(beam_width=4),
        )
        assert len(scores) == len(triples)
        assert all(0.0 < score <= 1.0 for score in scores)

    def test_mean_matches_evaluator_mrr(self, agents_and_environment):
        dataset, agent_a, _, environment = agents_and_environment
        triples = dataset.splits.test[:6]
        config = EvaluationConfig(beam_width=4)
        scores = per_query_reciprocal_ranks(
            agent_a, environment, triples, filter_graph=dataset.graph, config=config
        )
        metrics = evaluate_entity_prediction(
            agent_a, environment, triples, filter_graph=dataset.graph, config=config
        )
        assert float(np.mean(scores)) == pytest.approx(metrics["mrr"])


class TestCompareScores:
    def test_identical_systems_not_significant(self):
        scores = [0.1, 0.5, 1.0, 0.25] * 5
        result = compare_scores(scores, scores, name_a="X", name_b="Y", rng=0)
        assert result.mean_difference == pytest.approx(0.0)
        assert not result.significant()
        assert result.wins_a == result.wins_b == 0
        assert result.ties == len(scores)

    def test_clear_winner_is_significant(self):
        worse = [0.1] * 30
        better = [0.9] * 30
        result = compare_scores(better, worse, name_a="MMKGR", name_b="OSKGR", rng=0)
        assert result.mean_difference == pytest.approx(0.8)
        assert result.significant()
        assert result.wins_a == 30
        assert "MMKGR" in result.render()

    def test_summary_keys(self):
        result = compare_scores([1.0, 0.5], [0.5, 0.25], name_a="a", name_b="b", rng=0)
        summary = result.summary()
        assert summary["queries"] == 2.0
        assert summary["mrr_a"] == pytest.approx(0.75)
        assert summary["wins_a"] == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_scores([1.0], [0.5, 0.25])
        with pytest.raises(ValueError):
            compare_scores([], [])


class TestCompareAgents:
    def test_paired_comparison_over_same_queries(self, agents_and_environment):
        dataset, agent_a, agent_b, environment = agents_and_environment
        result = compare_agents(
            agent_a, agent_b, environment, dataset.splits.test,
            name_a="init-0", name_b="init-99",
            filter_graph=dataset.graph,
            config=EvaluationConfig(beam_width=4),
            max_queries=5,
            num_samples=200,
            rng=3,
        )
        assert isinstance(result, ComparisonResult)
        assert result.num_queries == 5
        assert 0.0 <= result.bootstrap_p_value <= 1.0
        assert result.wins_a + result.wins_b + result.ties == 5

    def test_agent_compared_with_itself_ties_everywhere(self, agents_and_environment):
        dataset, agent_a, _, environment = agents_and_environment
        result = compare_agents(
            agent_a, agent_a, environment, dataset.splits.test[:4],
            filter_graph=dataset.graph, config=EvaluationConfig(beam_width=4),
            num_samples=100, rng=1,
        )
        assert result.ties == result.num_queries
        assert result.mean_difference == pytest.approx(0.0)

    def test_empty_queries_rejected(self, agents_and_environment):
        _, agent_a, agent_b, environment = agents_and_environment
        with pytest.raises(ValueError):
            compare_agents(agent_a, agent_b, environment, [])
