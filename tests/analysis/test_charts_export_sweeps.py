"""Tests for ASCII charts, record export, and parameter sweeps."""

from __future__ import annotations

import csv
import json

import pytest

from repro.analysis.charts import ascii_bar_chart, ascii_histogram, ascii_line_chart
from repro.analysis.export import (
    load_records_json,
    metrics_table,
    records_to_csv,
    records_to_json,
    save_metrics_csv,
)
from repro.analysis.sweeps import SweepResult, run_sweep
from repro.utils.tables import format_table


class TestAsciiBarChart:
    def test_each_label_gets_a_line(self):
        chart = ascii_bar_chart(["MMKGR", "RLH"], [0.8, 0.6], title="Hits@1")
        lines = chart.splitlines()
        assert lines[0] == "Hits@1"
        assert len(lines) == 3
        assert "MMKGR" in lines[1]

    def test_largest_value_gets_longest_bar(self):
        chart = ascii_bar_chart(["a", "b"], [1.0, 0.5], width=20)
        bar_a = chart.splitlines()[0].count("█")
        bar_b = chart.splitlines()[1].count("█")
        assert bar_a == 20
        assert bar_b == 10

    def test_zero_values_render_without_bars(self):
        chart = ascii_bar_chart(["a"], [0.0])
        assert "█" not in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0], width=0)

    def test_empty_chart(self):
        assert ascii_bar_chart([], [], title="empty") == "empty"


class TestAsciiHistogram:
    def test_bin_count_matches(self):
        chart = ascii_histogram([0.1, 0.2, 0.3, 0.9], bins=4)
        assert len(chart.splitlines()) == 4

    def test_empty_sample(self):
        assert ascii_histogram([], title="none") == "none"

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_histogram([0.1], bins=0)


class TestAsciiLineChart:
    def test_contains_legend_and_bounds(self):
        series = {"MMKGR": [(2, 0.5), (3, 0.7), (4, 0.72)], "RLH": [(2, 0.4), (3, 0.5), (4, 0.55)]}
        chart = ascii_line_chart(series, width=30, height=8, title="Fig. 8")
        assert "Fig. 8" in chart
        assert "legend:" in chart
        assert "MMKGR" in chart
        assert "o" in chart and "x" in chart

    def test_empty_series(self):
        assert ascii_line_chart({}, title="none") == "none"

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"a": [(0, 0)]}, width=1)


class TestExport:
    def test_records_csv_round_trip(self, tmp_path):
        records = [{"model": "MMKGR", "mrr": 0.5}, {"model": "RLH", "mrr": 0.4, "extra": 1}]
        path = records_to_csv(records, tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["model"] == "MMKGR"
        assert rows[0]["extra"] == ""
        assert rows[1]["extra"] == "1"

    def test_records_json_round_trip(self, tmp_path):
        records = [{"model": "MMKGR", "mrr": 0.5}]
        path = records_to_json(records, tmp_path / "out.json")
        assert load_records_json(path) == records

    def test_load_records_json_rejects_non_array(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(ValueError):
            load_records_json(path)

    def test_metrics_table_layout(self):
        results = {"MMKGR": {"mrr": 0.5, "hits@1": 0.4}, "RLH": {"mrr": 0.3}}
        headers, rows = metrics_table(results)
        assert headers == ["model", "mrr", "hits@1"]
        assert rows[1][2] is None
        # The layout must be accepted by the ASCII table renderer.
        assert "MMKGR" in format_table(headers, rows)

    def test_save_metrics_csv(self, tmp_path):
        results = {"MMKGR": {"mrr": 0.5}}
        path = save_metrics_csv(results, tmp_path / "metrics.csv")
        content = path.read_text()
        assert "model" in content and "MMKGR" in content


class TestSweeps:
    def test_cartesian_product_order_and_metrics(self):
        result = run_sweep(
            {"T": [2, 3], "u": [1.0]},
            evaluate=lambda T, u: {"hits@1": T * u / 10.0},
        )
        assert len(result) == 2
        assert result.records[0]["T"] == 2
        assert result.metric_values("hits@1") == [0.2, 0.3]

    def test_skip_rules_out_combinations(self):
        result = run_sweep(
            {"threshold": [2, 3, 4], "T": [3]},
            evaluate=lambda threshold, T: {"hits@1": 0.1},
            skip=lambda threshold, T: threshold > T,
        )
        assert len(result) == 2

    def test_best_record(self):
        result = run_sweep(
            {"u": [1.0, 3.0, 6.0]},
            evaluate=lambda u: {"hits@1": 1.0 - abs(u - 3.0) / 10.0},
        )
        assert result.best_record("hits@1")["u"] == 3.0
        assert result.best_record("hits@1", maximize=False)["u"] in (1.0, 6.0)

    def test_best_record_missing_metric(self):
        result = SweepResult(parameter_names=["u"])
        with pytest.raises(KeyError):
            result.best_record("hits@1")

    def test_series_and_grouped_series(self):
        result = run_sweep(
            {"model": ["MMKGR", "RLH"], "T": [2, 3]},
            evaluate=lambda model, T: {"hits@1": (0.2 if model == "RLH" else 0.4) + T / 100.0},
        )
        series = result.grouped_series("model", "T", "hits@1")
        assert set(series) == {"MMKGR", "RLH"}
        assert len(series["MMKGR"]) == 2
        flat = result.series("T", "hits@1")
        assert len(flat) == 4

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            run_sweep({}, evaluate=lambda: {"hits@1": 0.0})
