"""Tests for the ``mmkgr`` command-line interface.

The commands are exercised through :func:`repro.cli.main.main` with explicit
argument lists; training commands use a tiny preset written to a JSON config
file so every invocation stays fast.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli.main import build_parser, main
from repro.core.checkpoint import checkpoint_exists
from repro.core.config_io import save_preset


class _InterruptingStdin:
    """A stdio stand-in that delivers SIGINT's KeyboardInterrupt mid-stream.

    ``serve --stdio`` iterates its input; yielding the given lines first
    means the interrupt arrives with work already in flight, so the test
    exercises the full drain-then-exit-130 path rather than an idle exit.
    """

    def __init__(self, lines):
        self._lines = iter(lines)

    def __iter__(self):
        return self

    def __next__(self):
        for line in self._lines:
            return line + "\n"
        raise KeyboardInterrupt


@pytest.fixture(scope="module")
def tiny_preset_file(request, tmp_path_factory):
    preset = request.getfixturevalue("tiny_preset")
    path = tmp_path_factory.mktemp("config") / "tiny_preset.json"
    save_preset(preset, path)
    return str(path)


@pytest.fixture(scope="module")
def trained_checkpoint(tiny_preset_file, tmp_path_factory):
    """One CLI-trained checkpoint shared by the evaluate/explain/fewshot tests."""
    directory = tmp_path_factory.mktemp("checkpoints") / "mmkgr"
    exit_code = main(
        [
            "train",
            "--dataset", "wn9-img-txt",
            "--scale", "0.2",
            "--seed", "3",
            "--config", tiny_preset_file,
            "--output", str(directory),
        ]
    )
    assert exit_code == 0
    return str(directory)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "wn9-img-txt"
        assert args.ablation == "MMKGR"
        assert args.preset == "fast"
        assert not args.scalar_eval

    def test_scalar_eval_flag_parses_everywhere(self):
        parser = build_parser()
        assert parser.parse_args(["train", "--scalar-eval"]).scalar_eval
        assert parser.parse_args(
            ["evaluate", "--checkpoint", "ckpt", "--scalar-eval"]
        ).scalar_eval
        assert parser.parse_args(["baselines", "--scalar-eval"]).scalar_eval

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--checkpoint", "ckpt"])
        assert args.host == "127.0.0.1"
        assert args.port == 8977
        assert args.max_batch_size == 16
        assert args.max_wait_ms == 5.0
        assert args.workers == 1
        assert not args.stdio
        assert args.stats_interval is None

    def test_serve_stats_interval_parses(self):
        args = build_parser().parse_args(
            ["serve", "--checkpoint", "ckpt", "--stats-interval", "2"]
        )
        assert args.stats_interval == 2.0

    def test_serve_backend_parses_and_defaults_to_threads(self):
        args = build_parser().parse_args(["serve", "--checkpoint", "ckpt"])
        assert args.backend == "threads"
        args = build_parser().parse_args(
            ["serve", "--checkpoint", "ckpt", "--backend", "processes"]
        )
        assert args.backend == "processes"

    def test_serve_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--checkpoint", "ckpt", "--backend", "gevent"]
            )

    def test_loadtest_defaults(self):
        args = build_parser().parse_args(["loadtest", "run", "spec.json"])
        assert args.loadtest_command == "run"
        assert args.spec == "spec.json"
        assert args.output is None
        assert not args.enforce_slo
        args = build_parser().parse_args(
            ["loadtest", "sweep", "spec.json", "--output", "r.json", "--enforce-slo"]
        )
        assert args.loadtest_command == "sweep"
        assert args.output == "r.json" and args.enforce_slo

    def test_loadtest_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadtest"])


class TestDatasetCommands:
    def test_stats_prints_table(self, capsys):
        exit_code = main(
            ["dataset", "stats", "--name", "wn9-img-txt", "--scale", "0.2", "--cardinality"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "dataset statistics" in captured
        assert "relation cardinality" in captured

    def test_generate_writes_splits_and_config(self, tmp_path, capsys):
        output = tmp_path / "export"
        exit_code = main(
            [
                "dataset", "generate",
                "--name", "wn9-img-txt",
                "--scale", "0.2",
                "--output", str(output),
            ]
        )
        assert exit_code == 0
        for name in ("train.tsv", "valid.tsv", "test.tsv", "dataset_config.json", "statistics.json"):
            assert (output / name).exists()
        statistics = json.loads((output / "statistics.json").read_text())
        assert statistics["entities"] > 0


class TestTrainEvaluateExplain:
    def test_train_writes_checkpoint_and_prints_metrics(self, trained_checkpoint, capsys):
        assert checkpoint_exists(trained_checkpoint)

    def test_evaluate_from_checkpoint(self, trained_checkpoint, tmp_path, capsys):
        csv_path = tmp_path / "metrics.csv"
        exit_code = main(
            ["evaluate", "--checkpoint", trained_checkpoint, "--csv", str(csv_path)]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "entity link prediction" in captured
        assert csv_path.exists()

    def test_evaluate_scalar_eval_matches_vectorized(self, trained_checkpoint, capsys):
        # The CLI toggle selects the scalar loop; metrics must not move.
        assert main(["evaluate", "--checkpoint", trained_checkpoint]) == 0
        vectorized = capsys.readouterr().out
        assert (
            main(["evaluate", "--checkpoint", trained_checkpoint, "--scalar-eval"]) == 0
        )
        scalar = capsys.readouterr().out
        assert scalar == vectorized

    def test_explain_from_checkpoint(self, trained_checkpoint, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        exit_code = main(
            [
                "explain",
                "--checkpoint", trained_checkpoint,
                "--max-queries", "3",
                "--output", str(report_path),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "mined rules" in captured
        payload = json.loads(report_path.read_text())
        assert payload["summary"]["num_queries"] == 3.0

    def test_fewshot_from_checkpoint(self, trained_checkpoint, capsys):
        exit_code = main(
            [
                "fewshot",
                "--checkpoint", trained_checkpoint,
                "--support-size", "2",
                "--max-relations", "1",
                "--adaptation-epochs", "1",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "few-shot relations" in captured
        assert "overall" in captured

    def test_train_ablation_without_checkpoint(self, tiny_preset_file, capsys):
        exit_code = main(
            [
                "train",
                "--dataset", "wn9-img-txt",
                "--scale", "0.2",
                "--seed", "3",
                "--ablation", "OSKGR",
                "--config", tiny_preset_file,
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "OSKGR" in captured


class TestBaselinesCommand:
    def test_baselines_table_and_csv(self, tiny_preset_file, tmp_path, capsys):
        csv_path = tmp_path / "baselines.csv"
        exit_code = main(
            [
                "baselines",
                "--dataset", "wn9-img-txt",
                "--scale", "0.2",
                "--seed", "3",
                "--models", "MTRL,TransAE",
                "--config", tiny_preset_file,
                "--csv", str(csv_path),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "MTRL" in captured and "TransAE" in captured
        assert csv_path.exists()


class TestQueryCommands:
    def test_query_from_bare_checkpoint(self, trained_checkpoint, capsys):
        exit_code = main(
            ["query", "--checkpoint", trained_checkpoint, "--head", "0", "--relation", "1", "-k", "3"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "reasoning path" in captured

    def test_query_json_output(self, trained_checkpoint, capsys):
        exit_code = main(
            [
                "query",
                "--checkpoint", trained_checkpoint,
                "--head", "0",
                "--relation", "1",
                "--json",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        payload = json.loads(captured)
        assert isinstance(payload, list)
        if payload:
            assert {"entity", "entity_name", "score"} <= set(payload[0])

    def test_serve_batch_from_tsv(self, trained_checkpoint, tmp_path, capsys):
        queries = tmp_path / "queries.tsv"
        queries.write_text("0\t1\n2\t1\n", encoding="utf-8")
        output = tmp_path / "answers.json"
        exit_code = main(
            [
                "serve-batch",
                "--checkpoint", trained_checkpoint,
                "--queries", str(queries),
                "-k", "3",
                "--output", str(output),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "answered 2 queries" in captured
        payload = json.loads(output.read_text())
        assert len(payload) == 2
        assert payload[0]["head"] == "0"

    def test_serve_batch_rejects_malformed_tsv(self, trained_checkpoint, tmp_path, capsys):
        queries = tmp_path / "bad.tsv"
        queries.write_text("only-one-column\n", encoding="utf-8")
        exit_code = main(
            ["serve-batch", "--checkpoint", trained_checkpoint, "--queries", str(queries)]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err and ":1" in captured.err

    def test_serve_batch_rejects_malformed_json(self, trained_checkpoint, tmp_path, capsys):
        queries = tmp_path / "bad.json"
        queries.write_text('{"not": "a list of pairs"}', encoding="utf-8")
        exit_code = main(
            ["serve-batch", "--checkpoint", trained_checkpoint, "--queries", str(queries)]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_serve_batch_missing_query_file(self, trained_checkpoint, tmp_path, capsys):
        exit_code = main(
            [
                "serve-batch",
                "--checkpoint", trained_checkpoint,
                "--queries", str(tmp_path / "does-not-exist.tsv"),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_query_unknown_entity_exits_nonzero(self, trained_checkpoint, capsys):
        exit_code = main(
            [
                "query",
                "--checkpoint", trained_checkpoint,
                "--head", "no-such-entity",
                "--relation", "1",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "no-such-entity" in captured.err

    def test_serve_stdio_mode(self, trained_checkpoint, capsys, monkeypatch):
        lines = [
            json.dumps({"head": 0, "relation": 1, "k": 3}),
            json.dumps({"head": 2, "relation": 1}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        exit_code = main(
            ["serve", "--checkpoint", trained_checkpoint, "--stdio", "--max-wait-ms", "5"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        records = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert len(records) == 2
        assert all("predictions" in record for record in records)

    def test_serve_rejects_busy_port(self, trained_checkpoint, capsys):
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            exit_code = main(
                ["serve", "--checkpoint", trained_checkpoint, "--port", str(port)]
            )
        finally:
            blocker.close()
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_serve_stdio_reports_failures(self, trained_checkpoint, capsys, monkeypatch):
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(json.dumps({"head": "no-such-entity", "relation": 1}) + "\n"),
        )
        exit_code = main(["serve", "--checkpoint", trained_checkpoint, "--stdio"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error" in captured.out

    def test_serve_stdio_sigint_drains_and_exits_130(
        self, trained_checkpoint, capsys, monkeypatch
    ):
        lines = [json.dumps({"head": 0, "relation": 1, "k": 3})]
        monkeypatch.setattr("sys.stdin", _InterruptingStdin(lines))
        exit_code = main(
            ["serve", "--checkpoint", trained_checkpoint, "--stdio", "--max-wait-ms", "5"]
        )
        captured = capsys.readouterr()
        assert exit_code == 130
        assert "shutting down" in captured.err

    def test_serve_stdio_sigint_stops_process_backend_workers(
        self, trained_checkpoint, capsys, monkeypatch
    ):
        import multiprocessing

        lines = [json.dumps({"head": 0, "relation": 1, "k": 3})]
        monkeypatch.setattr("sys.stdin", _InterruptingStdin(lines))
        exit_code = main(
            [
                "serve",
                "--checkpoint", trained_checkpoint,
                "--stdio",
                "--backend", "processes",
                "--max-wait-ms", "5",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 130
        assert "shutting down" in captured.err
        # The close() drain must take the worker processes down with it.
        assert multiprocessing.active_children() == []

    def test_query_from_saved_reasoner(self, trained_checkpoint, tmp_path, capsys):
        from repro.core.checkpoint import load_checkpoint
        from repro.serve import Reasoner

        saved = tmp_path / "reasoner"
        reasoner = Reasoner.from_pipeline(load_checkpoint(trained_checkpoint))
        reasoner.save(saved)
        exit_code = main(
            ["query", "--checkpoint", str(saved), "--head", "0", "--relation", "1"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "reasoning path" in captured


class TestKgCommands:
    @pytest.fixture(scope="class")
    def synth_graph_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("graphs") / "synth"
        exit_code = main(
            [
                "kg", "synth",
                "--entities", "800",
                "--relations", "4",
                "--avg-degree", "5",
                "--features",
                "--image-coverage", "0.5",
                "--seed", "5",
                "--output", str(directory),
            ]
        )
        assert exit_code == 0
        return str(directory)

    def test_synth_writes_csr_directory(self, synth_graph_dir):
        from pathlib import Path

        names = {p.name for p in Path(synth_graph_dir).iterdir()}
        assert {"csr_meta.json", "indptr.npy", "adj_tails.npy", "triples.npy"} <= names
        assert "modal_meta.json" in names  # --features
        assert "entities.json" not in names  # RangeVocabulary stays implicit

    def test_stats_json(self, synth_graph_dir, capsys):
        exit_code = main(["kg", "stats", "--graph", synth_graph_dir, "--json"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        payload = json.loads(captured)
        assert payload["entities"] == 800
        assert payload["relations"] == 2 * 4 + 1
        assert payload["isolated_entities"] == 0

    def test_build_from_named_dataset(self, tmp_path, capsys):
        directory = tmp_path / "built"
        exit_code = main(
            ["kg", "build", "--name", "wn9-img-txt", "--scale", "0.2",
             "--output", str(directory)]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "written to" in captured
        assert (directory / "csr_meta.json").exists()
        assert (directory / "modal_meta.json").exists()

    def test_query_graph(self, synth_graph_dir, capsys):
        exit_code = main(
            ["query", "--graph", synth_graph_dir, "--head", "e7",
             "--relation", "rel_000", "-k", "3"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "reasoning path" in captured

    def test_serve_batch_graph(self, synth_graph_dir, tmp_path, capsys):
        queries = tmp_path / "queries.tsv"
        queries.write_text("e7\trel_000\ne11\trel_001\n", encoding="utf-8")
        output = tmp_path / "answers.json"
        exit_code = main(
            ["serve-batch", "--graph", synth_graph_dir, "--queries", str(queries),
             "-k", "2", "--output", str(output)]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "answered 2 queries" in captured
        payload = json.loads(output.read_text())
        assert len(payload) == 2 and len(payload[0]["predictions"]) == 2

    def test_synth_rejects_bad_exponent(self, tmp_path, capsys):
        exit_code = main(
            ["kg", "synth", "--entities", "100", "--degree-exponent", "1.2",
             "--output", str(tmp_path / "bad")]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_query_missing_graph_dir(self, tmp_path, capsys):
        exit_code = main(
            ["query", "--graph", str(tmp_path / "nope"), "--head", "e1",
             "--relation", "rel_000"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_query_rejects_graph_and_checkpoint_together(self, synth_graph_dir):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--graph", synth_graph_dir, "--checkpoint", "x",
                 "--head", "0", "--relation", "1"]
            )


class TestLoadtestCommand:
    @staticmethod
    def _spec_payload(**slo) -> dict:
        return {
            "name": "cli-smoke",
            "deployment": {
                "preset": "tiny",
                "models": ["mmkgr"],
                "dataset": "wn9-img-txt",
                "scale": 0.2,
                "seed": 3,
                "max_wait_ms": 2.0,
                "k": 3,
            },
            "workload": {
                "mode": "closed",
                "concurrency": 2,
                "duration_s": 0.3,
                "max_requests": 12,
                "seed": 5,
            },
            **({"slo": slo} if slo else {}),
        }

    def test_run_prints_table_and_writes_report(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self._spec_payload(p99_ms=60_000.0)))
        output = tmp_path / "report.json"
        exit_code = main(["loadtest", "run", str(spec_path), "--output", str(output)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "cli-smoke" in captured and "compute p50" in captured
        report = json.loads(output.read_text())
        assert report["mode"] == "run" and len(report["points"]) == 1
        point = report["points"][0]
        assert point["completed"] > 0 and point["errors"] == 0
        assert set(point["stages_ms"]) == {"queue_wait", "batch_wait", "compute"}
        assert report["slo"]["passed"] is True

    def test_enforce_slo_failure_exits_1(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self._spec_payload(p99_ms=0.000001)))
        exit_code = main(["loadtest", "run", str(spec_path), "--enforce-slo"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "SLO failed" in captured.err
        assert "SLO FAIL" in captured.out

    def test_missing_spec_file_exits_2(self, tmp_path, capsys):
        exit_code = main(["loadtest", "run", str(tmp_path / "missing.json")])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_invalid_spec_exits_2(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"workload": {"mode": "bogus"}}))
        exit_code = main(["loadtest", "run", str(spec_path)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "workload.mode" in captured.err


class _FakeStatsServer:
    """Just enough server surface for the stats-logger helpers."""

    class _Pool:
        @staticmethod
        def names():
            return ["mmkgr"]

    pool = _Pool()

    @staticmethod
    def stats_dict(model=None):
        return {"requests_total": 4, "stages": {}}


class TestStatsLogger:
    def test_snapshot_line_is_one_json_object(self):
        from repro.cli.main import _stats_snapshot_line

        payload = json.loads(_stats_snapshot_line(_FakeStatsServer()))
        assert "ts" in payload
        assert payload["models"]["mmkgr"]["requests_total"] == 4

    def test_logger_emits_periodically_until_stopped(self):
        import time

        from repro.cli.main import _start_stats_logger

        stream = io.StringIO()
        stop = _start_stats_logger(_FakeStatsServer(), interval_s=0.01, stream=stream)
        time.sleep(0.15)
        stop.set()
        time.sleep(0.05)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) >= 2
        assert all(json.loads(line)["models"] for line in lines)

    def test_serve_stdio_with_stats_interval(self, trained_checkpoint, capsys, monkeypatch):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps({"head": 0, "relation": 1, "k": 3}) + "\n")
        )
        exit_code = main(
            [
                "serve",
                "--checkpoint", trained_checkpoint,
                "--stdio",
                "--max-wait-ms", "5",
                "--stats-interval", "0.01",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "predictions" in captured.out
        # Any snapshot lines that made it out before shutdown are valid JSON.
        for line in captured.err.strip().splitlines():
            assert "models" in json.loads(line)


class TestModelsCommands:
    """The registry workflow driven end to end through the CLI."""

    @pytest.fixture(scope="class")
    def registry_root(self, trained_checkpoint, tmp_path_factory):
        root = tmp_path_factory.mktemp("registry")
        for arguments in (
            ["models", "publish", "--registry", str(root),
             "--checkpoint", trained_checkpoint, "--name", "mmkgr"],
            ["models", "publish", "--registry", str(root),
             "--checkpoint", trained_checkpoint, "--name", "mmkgr", "--alias", "prod"],
        ):
            assert main(arguments) == 0
        return str(root)

    def test_publish_prints_the_version_ref(
        self, registry_root, trained_checkpoint, capsys, tmp_path
    ):
        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps({"hits@1": 0.5}))
        exit_code = main(
            ["models", "publish", "--registry", registry_root,
             "--checkpoint", trained_checkpoint, "--name", "side",
             "--metrics", str(metrics)]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "published side@1" in captured

    def test_list_table_and_json(self, registry_root, capsys):
        assert main(["models", "list", "--registry", registry_root]) == 0
        table = capsys.readouterr().out
        assert "mmkgr" in table and "prod->2" in table
        assert main(["models", "list", "--registry", registry_root, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        mmkgr = next(m for m in payload if m["name"] == "mmkgr")
        assert mmkgr["versions"] == [1, 2]
        assert mmkgr["aliases"]["prod"] == 2

    def test_promote_and_show(self, registry_root, capsys):
        exit_code = main(
            ["models", "promote", "--registry", registry_root,
             "--model", "mmkgr@1", "--alias", "canary"]
        )
        assert exit_code == 0
        assert "promoted mmkgr@1 to mmkgr@canary" in capsys.readouterr().out
        exit_code = main(
            ["models", "show", "--registry", registry_root,
             "--model", "mmkgr@canary", "--json"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        description = json.loads(captured)
        assert description["version"] == 1
        assert "canary" in description["aliases"]

    def test_promote_unknown_version_exits_2(self, registry_root, capsys):
        exit_code = main(
            ["models", "promote", "--registry", registry_root,
             "--model", "mmkgr@9", "--alias", "prod"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_serve_registry_stdio(self, registry_root, capsys, monkeypatch):
        lines = [
            json.dumps({"head": 0, "relation": 1, "k": 3}),
            json.dumps({"head": 2, "relation": 1, "model": "mmkgr"}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        exit_code = main(
            ["serve", "--registry", registry_root, "--model", "mmkgr@prod",
             "--stdio", "--max-wait-ms", "5"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        records = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert len(records) == 2
        assert all("predictions" in record for record in records)

    def test_serve_registry_rejects_unknown_model(self, registry_root, capsys):
        exit_code = main(["serve", "--registry", registry_root, "--model", "ghost"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "ghost" in captured.err

    def test_serve_rejects_checkpoint_and_registry_together(self, registry_root):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--checkpoint", "ckpt", "--registry", registry_root]
            )
