"""Tests for the unified gate-attention network and fusion variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fusion.gate_attention import FusionInputs, UnifiedGateAttentionNetwork
from repro.fusion.variants import (
    AttentionOnlyFuser,
    ConcatenationFuser,
    FusionVariant,
    StructureOnlyFuser,
    build_fuser,
)
from repro.nn.tensor import Tensor

STRUCTURAL_DIM = 8
HISTORY_DIM = 6
TEXT_DIM = 10
IMAGE_DIM = 12


def make_inputs(rng, history_requires_grad: bool = False) -> FusionInputs:
    history = Tensor(rng.normal(size=(HISTORY_DIM,)), requires_grad=history_requires_grad)
    return FusionInputs(
        source_embedding=rng.normal(size=STRUCTURAL_DIM),
        current_embedding=rng.normal(size=STRUCTURAL_DIM),
        query_relation_embedding=rng.normal(size=STRUCTURAL_DIM),
        history=history,
        source_text=rng.normal(size=TEXT_DIM),
        source_image=rng.normal(size=IMAGE_DIM),
        current_text=rng.normal(size=TEXT_DIM),
        current_image=rng.normal(size=IMAGE_DIM),
    )


def make_network(**kwargs) -> UnifiedGateAttentionNetwork:
    defaults = dict(
        structural_dim=STRUCTURAL_DIM,
        history_dim=HISTORY_DIM,
        text_dim=TEXT_DIM,
        image_dim=IMAGE_DIM,
        auxiliary_dim=8,
        attention_dim=8,
        joint_dim=8,
        rng=0,
    )
    defaults.update(kwargs)
    return UnifiedGateAttentionNetwork(**defaults)


class TestUnifiedGateAttentionNetwork:
    def test_output_is_1d_of_joint_dim(self, rng):
        network = make_network()
        z = network(make_inputs(rng))
        assert z.shape == (8,)
        assert network.output_dim == 8

    def test_odd_auxiliary_dim_raises(self):
        with pytest.raises(ValueError):
            make_network(auxiliary_dim=7)

    def test_fusion_inputs_coerce_history(self, rng):
        inputs = FusionInputs(
            source_embedding=rng.normal(size=STRUCTURAL_DIM),
            current_embedding=rng.normal(size=STRUCTURAL_DIM),
            query_relation_embedding=rng.normal(size=STRUCTURAL_DIM),
            history=rng.normal(size=HISTORY_DIM),  # plain array is accepted
            source_text=rng.normal(size=TEXT_DIM),
            source_image=rng.normal(size=IMAGE_DIM),
            current_text=rng.normal(size=TEXT_DIM),
            current_image=rng.normal(size=IMAGE_DIM),
        )
        assert isinstance(inputs.history, Tensor)
        assert inputs.structural_dim() == 2 * STRUCTURAL_DIM + HISTORY_DIM

    def test_gradients_reach_parameters_and_history(self, rng):
        network = make_network()
        inputs = make_inputs(rng, history_requires_grad=True)
        network(inputs).sum().backward()
        grads = [p.grad for _, p in network.named_parameters()]
        assert all(g is not None for g in grads)
        assert inputs.history.grad is not None

    def test_output_changes_with_modalities(self, rng):
        network = make_network()
        inputs = make_inputs(rng)
        base = network(inputs).data.copy()
        modified = make_inputs(rng)
        modified.current_image = modified.current_image + 5.0
        assert not np.allclose(base, network(modified).data)


class TestVariants:
    @pytest.mark.parametrize(
        "variant",
        [
            FusionVariant.FULL,
            FusionVariant.NO_FILTRATION,
            FusionVariant.NO_ATTENTION,
            FusionVariant.STRUCTURE_ONLY,
            FusionVariant.CONCATENATION,
            FusionVariant.CONVENTIONAL_ATTENTION,
        ],
    )
    def test_all_variants_share_interface(self, variant, rng):
        fuser = build_fuser(
            variant,
            structural_dim=STRUCTURAL_DIM,
            history_dim=HISTORY_DIM,
            text_dim=TEXT_DIM,
            image_dim=IMAGE_DIM,
            auxiliary_dim=8,
            attention_dim=8,
            joint_dim=8,
            rng=0,
        )
        z = fuser(make_inputs(rng))
        assert z.shape == (8,)
        assert fuser.output_dim == 8

    def test_structure_only_ignores_modalities(self, rng):
        fuser = StructureOnlyFuser(STRUCTURAL_DIM, HISTORY_DIM, output_dim=8, rng=0)
        inputs = make_inputs(rng)
        base = fuser(inputs).data.copy()
        inputs.current_image = inputs.current_image + 100.0
        inputs.source_text = inputs.source_text + 100.0
        np.testing.assert_allclose(base, fuser(inputs).data)

    def test_concatenation_uses_modalities(self, rng):
        fuser = ConcatenationFuser(
            STRUCTURAL_DIM, HISTORY_DIM, TEXT_DIM, IMAGE_DIM, output_dim=8, rng=0
        )
        inputs = make_inputs(rng)
        base = fuser(inputs).data.copy()
        inputs.current_image = inputs.current_image + 100.0
        assert not np.allclose(base, fuser(inputs).data)

    def test_attention_only_fuser_output(self, rng):
        fuser = AttentionOnlyFuser(
            STRUCTURAL_DIM, HISTORY_DIM, TEXT_DIM, IMAGE_DIM, output_dim=8, rng=0
        )
        assert fuser(make_inputs(rng)).shape == (8,)

    def test_variant_enum_round_trip(self):
        assert FusionVariant("full") is FusionVariant.FULL
        with pytest.raises(ValueError):
            FusionVariant("not-a-variant")

    def test_full_differs_from_no_filtration(self, rng):
        kwargs = dict(
            structural_dim=STRUCTURAL_DIM,
            history_dim=HISTORY_DIM,
            text_dim=TEXT_DIM,
            image_dim=IMAGE_DIM,
            auxiliary_dim=8,
            attention_dim=8,
            joint_dim=8,
            rng=0,
        )
        inputs = make_inputs(rng)
        full = build_fuser(FusionVariant.FULL, **kwargs)(inputs).data
        ablated = build_fuser(FusionVariant.NO_FILTRATION, **kwargs)(inputs).data
        assert not np.allclose(full, ablated)
