"""Tests for the attention-fusion and irrelevance-filtration modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fusion.attention_fusion import AttentionFusionConfig, AttentionFusionModule
from repro.fusion.irrelevance_filtration import IrrelevanceFiltrationModule
from repro.nn.tensor import Tensor


@pytest.fixture()
def fusion_module() -> AttentionFusionModule:
    config = AttentionFusionConfig(
        structural_dim=10, auxiliary_dim=8, attention_dim=6, joint_dim=5
    )
    return AttentionFusionModule(config, rng=0)


class TestAttentionFusionModule:
    def test_output_shapes(self, fusion_module, rng):
        auxiliary = Tensor(rng.normal(size=(3, 8)))
        structural = Tensor(rng.normal(size=(3, 10)))
        attended, joint_right = fusion_module(auxiliary, structural)
        assert attended.shape == (3, 5)
        assert joint_right.shape == (3, 5)
        assert fusion_module.output_dim == 5

    def test_slot_mismatch_raises(self, fusion_module, rng):
        with pytest.raises(ValueError):
            fusion_module(Tensor(rng.normal(size=(2, 8))), Tensor(rng.normal(size=(3, 10))))

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            AttentionFusionConfig(structural_dim=0, auxiliary_dim=8)

    def test_gradients_flow_to_all_projections(self, fusion_module, rng):
        auxiliary = Tensor(rng.normal(size=(3, 8)), requires_grad=True)
        structural = Tensor(rng.normal(size=(3, 10)), requires_grad=True)
        attended, _ = fusion_module(auxiliary, structural)
        attended.sum().backward()
        for name, param in fusion_module.named_parameters():
            assert param.grad is not None, f"no gradient for {name}"
        assert auxiliary.grad is not None
        assert structural.grad is not None

    def test_output_depends_on_both_modalities(self, fusion_module, rng):
        auxiliary = rng.normal(size=(3, 8))
        structural = rng.normal(size=(3, 10))
        base, _ = fusion_module(Tensor(auxiliary), Tensor(structural))
        changed_aux, _ = fusion_module(Tensor(auxiliary + 1.0), Tensor(structural))
        changed_struct, _ = fusion_module(Tensor(auxiliary), Tensor(structural + 1.0))
        assert not np.allclose(base.data, changed_aux.data)
        assert not np.allclose(base.data, changed_struct.data)


class TestIrrelevanceFiltration:
    def test_output_shape_matches_input(self, rng):
        module = IrrelevanceFiltrationModule()
        attended = Tensor(rng.normal(size=(3, 5)))
        joint = Tensor(rng.normal(size=(3, 5)))
        assert module(attended, joint).shape == (3, 5)

    def test_shape_mismatch_raises(self, rng):
        module = IrrelevanceFiltrationModule()
        with pytest.raises(ValueError):
            module(Tensor(rng.normal(size=(3, 5))), Tensor(rng.normal(size=(3, 4))))

    def test_gate_suppresses_magnitude(self, rng):
        """Filtered features never exceed the raw interaction in magnitude (gate <= 1)."""
        module = IrrelevanceFiltrationModule()
        attended = Tensor(rng.normal(size=(4, 6)))
        joint = Tensor(rng.normal(size=(4, 6)))
        interaction = attended.data * joint.data
        filtered = module(attended, joint).data
        assert np.all(np.abs(filtered) <= np.abs(interaction) + 1e-12)

    def test_zero_interaction_is_heavily_gated(self):
        module = IrrelevanceFiltrationModule()
        attended = Tensor(np.zeros((2, 3)))
        joint = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(module(attended, joint).data, np.zeros((2, 3)))
